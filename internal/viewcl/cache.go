package viewcl

import (
	"container/list"
	"sync"

	"visualinux/internal/ctypes"
)

// Process-wide caches behind the compiled path. Figure programs are static
// strings re-run on every stop event in every session, so both the parsed
// AST and the lowered closure chains are shared across the whole process:
// 64 sessions running the stdlib cost one Parse and one lower total. Both
// caches are LRU-bounded because not every program is a static figure —
// vchat/viewql round-trips generate fresh sources per request, and an
// unbounded map would grow with every conversational turn the server ever
// served.

// lruCache is a mutex-guarded LRU with hit/miss/eviction counters.
// Values are immutable once inserted, so returning them outside the lock
// is safe.
type lruCache struct {
	mu     sync.Mutex
	cap    int
	m      map[any]*list.Element
	order  *list.List // front = most recently used
	hits   uint64
	misses uint64
	evicts uint64
}

type lruEntry struct {
	key any
	val any
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, m: make(map[any]*list.Element), order: list.New()}
}

func (c *lruCache) get(key any) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		return el.Value.(*lruEntry).val, true
	}
	c.misses++
	return nil, false
}

// add inserts key -> val, returning the canonical value (an existing entry
// wins a racing insert so every caller shares one instance).
func (c *lruCache) add(key, val any) any {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*lruEntry).val
	}
	c.m[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	for c.cap > 0 && c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.m, back.Value.(*lruEntry).key)
		c.evicts++
	}
	return val
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

func (c *lruCache) stats() (hits, misses, evicts uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evicts
}

// setCap rebounds the cache, evicting down to the new capacity, and
// returns the previous capacity. Tests shrink the cap to force churn.
func (c *lruCache) setCap(capacity int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.cap
	c.cap = capacity
	for c.cap > 0 && c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.m, back.Value.(*lruEntry).key)
		c.evicts++
	}
	return old
}

// DefaultParseCacheCap bounds the process-wide parse cache. The stdlib is a
// few dozen figure programs; the rest of the budget absorbs dynamically
// generated vchat/viewql sources without letting them accumulate forever.
const DefaultParseCacheCap = 256

var parseCache = newLRUCache(DefaultParseCacheCap)

// ParseCached is Parse behind a process-wide LRU cache keyed by
// (name, source). The returned Program is shared: callers must treat it as
// immutable (the compiled engine does; the tree-walking oracle parses
// privately instead).
func ParseCached(name, src string) (*Program, error) {
	key := name + "\x00" + src
	if p, ok := parseCache.get(key); ok {
		return p.(*Program), nil
	}
	p, err := Parse(name, src)
	if err != nil {
		return nil, err
	}
	return parseCache.add(key, p).(*Program), nil
}

// ParseCacheStats reports the parse cache's lifetime hit/miss/eviction
// counters (misses count actual Parse calls served through ParseCached).
func ParseCacheStats() (hits, misses, evictions uint64) {
	return parseCache.stats()
}

// ParseCacheLen reports how many parsed programs the cache currently holds.
func ParseCacheLen() int { return parseCache.len() }

// SetParseCacheCap rebounds the parse cache (evicting down if needed) and
// returns the previous capacity. Intended for tests that force churn.
func SetParseCacheCap(n int) int { return parseCache.setCap(n) }

// DefaultCompileCacheCap bounds the shared compiled-program cache. Entries
// are keyed by the parsed *Program, so the useful population tracks the
// parse cache; a matching bound keeps a dynamically generated program from
// pinning its closure chains after its AST has already been evicted.
const DefaultCompileCacheCap = 256

// compileKey identifies one lowered program: the shared AST plus the type
// registry its offsets were resolved against. Sessions over the same
// simulated kernel share both, so they share the lowering too.
type compileKey struct {
	prog *Program
	reg  *ctypes.Registry
}

// compileCache shares lowered programs across interpreters. Lowering reads
// only the type registry (keyed) and the defining interpreter's definition
// table (a prefetch-hint fallback for names defined outside the program),
// while every runtime closure resolves mutable state through the *running*
// interpreter — so interpreters that load the same definition library, as
// every session-fabric session does, can safely execute one shared chain.
type compileCache struct {
	lru    *lruCache
	mu     sync.Mutex // serializes lowering so a program lowers exactly once
	lowers uint64
}

var sharedCompiles = &compileCache{lru: newLRUCache(DefaultCompileCacheCap)}

func (cc *compileCache) get(in *Interp, prog *Program) (*compiledProgram, error) {
	var reg *ctypes.Registry
	if in.Env != nil {
		reg = in.Env.Types()
	}
	key := compileKey{prog: prog, reg: reg}
	if cp, ok := cc.lru.get(key); ok {
		return cp.(*compiledProgram), nil
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cp, ok := cc.lru.get(key); ok {
		return cp.(*compiledProgram), nil
	}
	cp, err := in.lower(prog)
	if err != nil {
		return nil, err
	}
	cc.lowers++
	return cc.lru.add(key, cp).(*compiledProgram), nil
}

// CompileCount reports how many program lowerings the process has performed
// through the shared cache — the "parsed and compiled once, not per
// session" proof the multi-tenant acceptance test asserts on.
func CompileCount() uint64 {
	sharedCompiles.mu.Lock()
	defer sharedCompiles.mu.Unlock()
	return sharedCompiles.lowers
}

// CompileCacheStats reports the shared compile cache's hit/miss/eviction
// counters.
func CompileCacheStats() (hits, misses, evictions uint64) {
	return sharedCompiles.lru.stats()
}
