package viewcl

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"visualinux/internal/ctypes"
	"visualinux/internal/expr"
	"visualinux/internal/graph"
	"visualinux/internal/obs"
	"visualinux/internal/target"
)

// Flag names one bit of a flags word (the flag:<id> decorator vocabulary).
type Flag struct {
	Mask uint64
	Name string
}

// Interp evaluates ViewCL programs against a debug target.
type Interp struct {
	Env    *expr.Env
	Flags  map[string][]Flag              // flag:<id> decorator sets
	Emojis map[string]func(uint64) string // emoji:<id> decorator renderers

	// Safety valves for runaway traversals.
	MaxObjects int // boxes per plot (default 50_000)
	MaxElems   int // elements per container (default 4096)

	// Obs, when set, enables per-run tracing (a span tree per Run, with
	// per-plot, per-box, per-view, per-container-iteration and link
	// transaction spans) and metrics. Nil disables both at near-zero cost.
	Obs *obs.Observer

	// PrefetchHints makes container iterators prefetch each element's full
	// object (node - anchor offset, sizeof element) per hop, so an element
	// straddling pages costs one coalesced fill instead of a walk-fill plus
	// a materialize-fill. On by default; tests toggle it to measure.
	PrefetchHints bool

	// Memo, when set, caches extracted boxes across runs: reads are
	// recorded per box, and a later run reuses any box whose recorded
	// bytes are provably unchanged (snapshot generations or content
	// hashes) instead of re-reading and re-rendering it. Runs also report
	// their page-granular ReadSet so callers can skip whole figures.
	Memo *Memo

	// Interpret selects the original tree-walking evaluator instead of the
	// compiled closure chains. It exists as the differential oracle: both
	// engines must produce byte-identical plots, and the interpreted path is
	// the reference the compiled one is benchmarked against.
	Interpret bool

	defs map[string]*boxDef

	// Compiled-program cache (per interpreter: closures bind this
	// interpreter's type registry and definition table).
	compMu   sync.Mutex
	compiled map[*Program]*compiledProgram

	// One reusable execution state (frames, scratch env, run maps). A second
	// concurrent Run simply allocates a fresh one.
	execMu   sync.Mutex
	execFree *execState
}

// New creates an interpreter over the environment (target + helpers).
func New(env *expr.Env) *Interp {
	in := &Interp{
		Env:           env,
		Flags:         make(map[string][]Flag),
		Emojis:        make(map[string]func(uint64) string),
		MaxObjects:    50_000,
		MaxElems:      4096,
		PrefetchHints: true,
		defs:          make(map[string]*boxDef),
	}
	// The builtin emoji renderers (lock, onoff) live in package-level
	// defaultEmojis; Emojis only carries per-interpreter overrides.
	return in
}

// boxDef is a resolved Box declaration. comp holds the compiled form of its
// views (nil when the definition was registered by the tree-walking oracle).
type boxDef struct {
	name  string
	ctype *ctypes.Type
	views []*resolvedView
	where []Binding // merged define-level + per-view where clauses
	comp  *compiledDef
}

type resolvedView struct {
	name  string
	items []ItemDecl
}

// Result is the outcome of running a program.
type Result struct {
	Graph  *graph.Graph
	Errors []error // non-fatal extraction issues (NULL links, etc.)
	// Trace is the extraction's span tree (nil unless Interp.Obs is set).
	Trace *obs.SpanExport

	// ReadSet is the page-granular, merged set of target ranges this run's
	// output depends on (nil unless Interp.Memo is set). Callers use it
	// with a snapshot's RangesUnchangedSince to reuse entire figures.
	ReadSet []target.Range
	// BoxesReused / BoxesBuilt split the run's boxes into memo clones vs
	// fresh materializations.
	BoxesReused int
	BoxesBuilt  int
}

// LoadDefs registers the Box definitions of a program without plotting, so
// stdlib definition libraries can be shared across programs. On the compiled
// path the definitions are lowered to closure chains once, here.
func (in *Interp) LoadDefs(prog *Program) error {
	if !in.Interpret {
		cp, err := in.compileProgram(prog)
		if err != nil {
			return err
		}
		for _, st := range cp.stmts {
			if st.def != nil {
				in.defs[st.def.name] = st.def
			}
		}
		return nil
	}
	for _, s := range prog.Stmts {
		if d, ok := s.(*DefineStmt); ok {
			if err := in.compileDef(d); err != nil {
				return err
			}
		}
	}
	return nil
}

func (in *Interp) compileDef(d *DefineStmt) error {
	def, err := in.buildDef(d)
	if err != nil {
		return err
	}
	in.defs[d.Name] = def
	return nil
}

// buildDef resolves a define statement (ctype, view inheritance, merged
// where clauses) without registering or lowering it.
func (in *Interp) buildDef(d *DefineStmt) (*boxDef, error) {
	ct, ok := in.Env.Types().Lookup(d.CType)
	if !ok {
		return nil, errf(d.Line, "define %s: unknown C type %q", d.Name, d.CType)
	}
	def := &boxDef{name: d.Name, ctype: ct.Strip()}
	def.where = append(def.where, d.Where...)
	byName := map[string]*resolvedView{}
	for _, vd := range d.Views {
		rv := &resolvedView{name: vd.Name}
		if vd.Parent != "" {
			parent, ok := byName[vd.Parent]
			if !ok {
				return nil, errf(vd.Line, "define %s: view :%s inherits unknown :%s", d.Name, vd.Name, vd.Parent)
			}
			rv.items = append(rv.items, parent.items...)
		}
		rv.items = append(rv.items, vd.Items...)
		def.where = append(def.where, vd.Where...)
		byName[vd.Name] = rv
		def.views = append(def.views, rv)
	}
	if len(def.views) == 0 {
		def.views = []*resolvedView{{name: "default"}}
	}
	return def, nil
}

// Run evaluates a full program: definitions, bindings, plot statements.
// The returned graph contains every box materialized while evaluating the
// plotted roots. The program is lowered to compiled closure chains (cached
// per interpreter) unless Interpret selects the tree-walking oracle.
func (in *Interp) Run(prog *Program) (*Result, error) {
	if in.Interpret {
		return in.runAST(prog)
	}
	cp, err := in.compileProgram(prog)
	if err != nil {
		return nil, err
	}
	return in.runCompiled(cp)
}

// runAST is the original tree-walking evaluator, kept byte-for-byte as the
// differential oracle and performance baseline for the compiled path.
func (in *Interp) runAST(prog *Program) (*Result, error) {
	run := &runState{
		in:   in,
		g:    graph.New(prog.Source),
		memo: make(map[memoKey]string),
	}
	if in.Memo != nil {
		run.rec = &recorder{under: in.Env.Target, run: run}
		run.pages = make(map[uint64]bool)
	}
	if in.Obs != nil {
		run.tr = in.Obs.NewTrace("vplot:" + prog.Source)
		// Attach the tracer down the target chain so link transactions
		// appear as leaf spans of whichever box/view span issued them.
		if target.AttachTracer(in.Env.Target, run.tr) {
			defer target.AttachTracer(in.Env.Target, nil)
		}
	}
	reads0, bytes0 := in.Env.Target.Stats().Snapshot()
	t0 := time.Now()

	top := newScope(nil)
	for _, s := range prog.Stmts {
		switch st := s.(type) {
		case *DefineStmt:
			if err := in.compileDef(st); err != nil {
				return nil, err
			}
		case *BindStmt:
			top.define(st.Name, st.Expr)
		case *PlotStmt:
			sp := run.tr.StartSpan("plot:" + plotName(st.Expr))
			v, err := run.eval(st.Expr, top)
			if err != nil {
				return nil, fmt.Errorf("plot: %w", err)
			}
			rootID, err := run.plotRoot(v, plotName(st.Expr))
			if err != nil {
				return nil, err
			}
			if run.g.RootID == "" {
				run.g.RootID = rootID
			}
			run.g.Roots = append(run.g.Roots, rootID)
			sp.End()
		}
	}

	return in.finishRun(run, t0, reads0, bytes0)
}

// finishRun computes the run's stats, read set and trace export; shared by
// the compiled and interpreted engines so Result is shaped identically.
func (in *Interp) finishRun(run *runState, t0 time.Time, reads0, bytes0 uint64) (*Result, error) {
	reads1, bytes1 := in.Env.Target.Stats().Snapshot()
	run.g.Stats = graph.Stats{
		Objects:    len(run.g.Boxes),
		Reads:      reads1 - reads0,
		Bytes:      bytes1 - bytes0,
		DurationNS: time.Since(t0).Nanoseconds(),
	}
	res := &Result{Graph: run.g, Errors: run.errs,
		BoxesReused: run.reused, BoxesBuilt: run.built}
	if run.pages != nil {
		rs := make([]target.Range, 0, len(run.pages))
		for p := range run.pages {
			rs = append(rs, target.Range{Addr: p, Size: target.PageSize})
		}
		res.ReadSet = target.MergeRanges(rs)
	}
	if run.tr != nil {
		root := run.tr.Root()
		root.TagUint("objects", uint64(run.g.Stats.Objects))
		root.TagUint("reads", run.g.Stats.Reads)
		root.TagUint("bytes", run.g.Stats.Bytes)
		res.Trace = in.Obs.FinishTrace(run.tr)
	}
	return res, nil
}

// RunSource parses and runs in one step. On the compiled path the parse is
// served from a process-wide cache (figure programs are static strings run
// once per stop event), so steady-state rounds never re-lex their source.
func (in *Interp) RunSource(name, src string) (*Result, error) {
	var prog *Program
	var err error
	if in.Interpret {
		prog, err = Parse(name, src)
	} else {
		prog, err = ParseCached(name, src)
	}
	if err != nil {
		return nil, err
	}
	return in.Run(prog)
}

func plotName(e VExpr) string {
	if v, ok := e.(*VarRef); ok {
		return v.Name
	}
	return "plot"
}

// --- value domain -------------------------------------------------------------

type vkind int

const (
	vNull vkind = iota
	vC          // a C value (scalar, pointer, lvalue, string)
	vBox        // a materialized box
	vCont       // an ordered container of box IDs ("" = NULL slot)
)

type vval struct {
	kind  vkind
	c     expr.Value
	boxID string
	elems []string
}

func (v vval) isNull() bool {
	return v.kind == vNull || (v.kind == vC && !v.c.HasAddr && !v.c.IsStr && v.c.Bits == 0)
}

// --- scopes ------------------------------------------------------------------

type slotState int

const (
	slotUnforced slotState = iota
	slotForcing
	slotDone
)

type slot struct {
	expr  VExpr
	val   vval
	state slotState
}

type scope struct {
	parent *scope
	vars   map[string]*slot
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, vars: make(map[string]*slot)}
}

func (s *scope) define(name string, e VExpr) {
	s.vars[name] = &slot{expr: e}
}

func (s *scope) defineVal(name string, v vval) {
	s.vars[name] = &slot{val: v, state: slotDone}
}

func (s *scope) lookup(name string) (*slot, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if sl, ok := cur.vars[name]; ok {
			return sl, true
		}
	}
	return nil, false
}

// --- run state ----------------------------------------------------------------

// memoKey identifies one box instance: definition name + object address.
// A struct key keeps the hot materialize/memo lookups allocation-free (the
// old path formatted a "def@hex" string per box per run).
type memoKey struct {
	def  string
	addr uint64
}

func (k memoKey) String() string {
	return k.def + "@" + strconv.FormatUint(k.addr, 16)
}

type runState struct {
	in    *Interp
	g     *graph.Graph
	memo  map[memoKey]string // def@addr -> box ID (this run)
	errs  []error
	vboxN int         // virtual box counter
	tr    *obs.Tracer // per-run trace (nil = tracing off; all ops nil-safe)

	// Cross-run memoization state (zero-valued unless in.Memo is set).
	rec    *recorder       // read-recording target wrapper
	frames []*memoFrame    // materialization recording stack
	pages  map[uint64]bool // page bases the run's output depends on
	reused int
	built  int

	// Compiled-engine state (nil/zero on the interpreted oracle path).
	exec     *execState // pooled frames, scratch env, reusable run maps
	curFrame *cframe    // frame the pooled env's ${...} resolver walks from

	// Output arenas for the compiled path: current chunks of the view/item
	// backing stores the run's graph ends up owning, plus cumulative counts
	// so the next run of the same program can pre-size exactly. Reset at run
	// start so finished graphs keep their chunks and new runs carve fresh
	// ones.
	viewArena []graph.View
	itemArena []graph.Item
	nviews    int
	nitems    int
}

// allocViews carves n views from the run's chunked view arena — amortized
// well below one allocation per box, and exactly one per run once the
// program's output size is known.
func (r *runState) allocViews(n int) []graph.View {
	r.nviews += n
	if len(r.viewArena)+n > cap(r.viewArena) {
		c := 16
		if n > c {
			c = n
		}
		r.viewArena = make([]graph.View, 0, c)
	}
	base := len(r.viewArena)
	r.viewArena = r.viewArena[:base+n]
	return r.viewArena[base : base+n : base+n]
}

// allocItems carves n items from the run's chunked item arena.
func (r *runState) allocItems(n int) []graph.Item {
	r.nitems += n
	if len(r.itemArena)+n > cap(r.itemArena) {
		c := 64
		if n > c {
			c = n
		}
		r.itemArena = make([]graph.Item, 0, c)
	}
	base := len(r.itemArena)
	r.itemArena = r.itemArena[:base+n]
	return r.itemArena[base : base+n : base+n]
}

// tgt is the target every extraction read goes through: the recording
// wrapper when memoizing, the session chain otherwise.
func (r *runState) tgt() target.Target {
	if r.rec != nil {
		return r.rec
	}
	return r.in.Env.Target
}

// nextVboxN consumes one virtual-box number. The resulting '#N' identity
// depends on global evaluation order, so the frame it lands in can never be
// reused from the memo — taint it.
func (r *runState) nextVboxN() int {
	if n := len(r.frames); n > 0 {
		r.frames[n-1].tainted = true
	}
	n := r.vboxN
	r.vboxN++
	return n
}

// recordRead mirrors one successful target read into the innermost frame
// (ordered ranges + running content sum) and the run-level page set.
func (r *runState) recordRead(addr uint64, buf []byte) {
	if n := len(r.frames); n > 0 {
		fr := r.frames[n-1]
		fr.reads = append(fr.reads, target.Range{Addr: addr, Size: uint64(len(buf))})
		fr.sum = target.HashSum(fr.sum, buf)
	}
	r.notePages(addr, uint64(len(buf)))
}

// noteChild records a direct materialization in the innermost frame.
func (r *runState) noteChild(def string, addr uint64) {
	if n := len(r.frames); n > 0 {
		fr := r.frames[n-1]
		fr.children = append(fr.children, childRef{def: def, addr: addr})
	}
}

// notePages adds [addr, addr+size) to the run-level page set.
func (r *runState) notePages(addr, size uint64) {
	if r.pages == nil || size == 0 {
		return
	}
	first := addr &^ (target.PageSize - 1)
	last := (addr + size - 1) &^ (target.PageSize - 1)
	if last < first { // clamp wraparound at the top of the address space
		last = ^uint64(0) &^ (target.PageSize - 1)
	}
	for p := first; ; p += target.PageSize {
		r.pages[p] = true
		if p == last {
			break
		}
	}
}

// noteRanges adds a reused entry's ranges to the run-level page set, so
// ReadSet stays complete even when no read actually happened.
func (r *runState) noteRanges(ranges []target.Range) {
	for _, rg := range ranges {
		r.notePages(rg.Addr, rg.Size)
	}
}

func (r *runState) notef(line int, format string, args ...any) {
	r.errs = append(r.errs, errf(line, format, args...))
}

// force evaluates a scope slot (lazily, with cycle detection).
func (r *runState) force(name string, sl *slot, sc *scope) (vval, error) {
	switch sl.state {
	case slotDone:
		return sl.val, nil
	case slotForcing:
		return vval{}, fmt.Errorf("viewcl: circular binding @%s", name)
	}
	sl.state = slotForcing
	v, err := r.eval(sl.expr, sc)
	if err != nil {
		sl.state = slotUnforced
		return vval{}, err
	}
	sl.val = v
	sl.state = slotDone
	return v, nil
}

// cEnv builds an expression environment whose resolver walks the ViewCL
// scope chain, so ${...} escapes see @bindings.
func (r *runState) cEnv(sc *scope) *expr.Env {
	env := &expr.Env{Target: r.tgt(), Funcs: r.in.Env.Funcs, Vars: r.in.Env.Vars}
	env.Resolver = func(name string) (expr.Value, bool) {
		sl, ok := sc.lookup(name)
		if !ok {
			return expr.Value{}, false
		}
		v, err := r.force(name, sl, sc)
		if err != nil {
			return expr.Value{}, false
		}
		cv, err := r.toCValue(v)
		if err != nil {
			return expr.Value{}, false
		}
		return cv, true
	}
	return env
}

// toCValue converts a ViewCL value for use inside a C expression.
func (r *runState) toCValue(v vval) (expr.Value, error) {
	switch v.kind {
	case vC:
		return v.c, nil
	case vNull:
		return expr.Value{Type: ctypes.VoidPtr}, nil
	case vBox:
		b, ok := r.g.Get(v.boxID)
		if !ok || b.Addr == 0 {
			return expr.Value{}, fmt.Errorf("viewcl: box %s has no address", v.boxID)
		}
		t, ok := r.in.Env.Types().Lookup(b.TypeName)
		if !ok {
			t = ctypes.Void
		}
		return expr.MakePointer(t, b.Addr), nil
	default:
		return expr.Value{}, fmt.Errorf("viewcl: container value cannot enter a C expression")
	}
}

// eval evaluates a ViewCL expression.
func (r *runState) eval(e VExpr, sc *scope) (vval, error) {
	switch n := e.(type) {
	case *NullNode:
		return vval{kind: vNull}, nil
	case *NumberNode:
		return vval{kind: vC, c: expr.MakeInt(r.in.Env.Types().MustLookup("unsigned long"), n.V)}, nil
	case *StringNode:
		return vval{kind: vC, c: expr.MakeString(n.S)}, nil
	case *VarRef:
		sl, ok := sc.lookup(n.Name)
		if !ok {
			return vval{}, errf(n.Line, "unbound variable @%s", n.Name)
		}
		return r.force(n.Name, sl, sc)
	case *CExprNode:
		if n.compiled == nil {
			ex, err := expr.Parse(n.Src, r.in.Env.Types())
			if err != nil {
				return vval{}, errf(n.Line, "%v", err)
			}
			n.compiled = ex
		}
		v, err := n.compiled.Eval(r.cEnv(sc))
		if err != nil {
			return vval{}, errf(n.Line, "%v", err)
		}
		return vval{kind: vC, c: v}, nil
	case *SwitchNode:
		return r.evalSwitch(n, sc)
	case *ConstructNode:
		return r.evalConstruct(n, sc)
	case *ContainerNode:
		return r.evalContainer(n, sc)
	case *SelectFromNode:
		return r.evalSelectFrom(n, sc)
	case *InlineBoxNode:
		return r.evalInlineBox(n, sc)
	}
	return vval{}, fmt.Errorf("viewcl: unhandled expression %T", e)
}

func (r *runState) evalSwitch(n *SwitchNode, sc *scope) (vval, error) {
	scrut, err := r.eval(n.Scrutinee, sc)
	if err != nil {
		return vval{}, err
	}
	sv, err := r.toCValue(scrut)
	if err != nil {
		return vval{}, errf(n.Line, "switch scrutinee: %v", err)
	}
	for _, cs := range n.Cases {
		for _, cv := range cs.Values {
			v, err := r.eval(cv, sc)
			if err != nil {
				return vval{}, err
			}
			c, err := r.toCValue(v)
			if err != nil {
				return vval{}, err
			}
			if cMatch(sv, c) {
				return r.eval(cs.Result, sc)
			}
		}
	}
	if n.Otherwise != nil {
		return r.eval(n.Otherwise, sc)
	}
	return vval{kind: vNull}, nil
}

func cMatch(a, b expr.Value) bool {
	if a.IsStr || b.IsStr {
		return a.Str == b.Str
	}
	// lvalues compare by address, scalars by bits
	av, bv := a.Bits, b.Bits
	if a.HasAddr {
		av = a.Addr
	}
	if b.HasAddr {
		bv = b.Addr
	}
	return av == bv
}

// addrOf extracts the object address from a C value (pointer rvalue or
// lvalue).
func addrOf(v expr.Value) (uint64, bool) {
	if v.HasAddr {
		return v.Addr, true
	}
	if v.Type != nil && (v.Type.IsPointer() || v.Type.IsInteger()) {
		return v.Bits, v.Bits != 0
	}
	return 0, false
}

func (r *runState) evalConstruct(n *ConstructNode, sc *scope) (vval, error) {
	def, ok := r.in.defs[n.BoxType]
	if !ok {
		return vval{}, errf(n.Line, "unknown Box type %q", n.BoxType)
	}
	av, err := r.eval(n.Arg, sc)
	if err != nil {
		return vval{}, err
	}
	if av.isNull() {
		return vval{kind: vNull}, nil
	}
	if av.kind == vBox {
		return av, nil // already materialized
	}
	cv, err := r.toCValue(av)
	if err != nil {
		return vval{}, errf(n.Line, "%s(...): %v", n.BoxType, err)
	}
	// Pointer lvalues (container slots, array elements) designate the
	// pointer cell; the box lives at the pointed-to object.
	if cv.HasAddr && cv.Type.IsPointer() {
		cv, err = r.cEnv(sc).Load(cv)
		if err != nil {
			return vval{}, errf(n.Line, "%s(...): %v", n.BoxType, err)
		}
	}
	addr, ok := addrOf(cv)
	if !ok {
		return vval{kind: vNull}, nil
	}
	if n.Anchor != "" {
		dot := indexByte(n.Anchor, '.')
		if dot < 0 {
			return vval{}, errf(n.Line, "anchor %q must be type.member", n.Anchor)
		}
		at, ok := r.in.Env.Types().Lookup(n.Anchor[:dot])
		if !ok {
			return vval{}, errf(n.Line, "anchor: unknown type %q", n.Anchor[:dot])
		}
		f, err := at.ResolvePath(n.Anchor[dot+1:])
		if err != nil {
			return vval{}, errf(n.Line, "anchor: %v", err)
		}
		addr -= f.Offset
	}
	id, err := r.materialize(def, addr)
	if err != nil {
		return vval{}, err
	}
	return vval{kind: vBox, boxID: id}, nil
}

// materialize creates (or returns the memoized) box instance for def@addr,
// evaluating all of its views — or, when a cross-run Memo holds a verified
// clean copy, reuses it without touching the target.
func (r *runState) materialize(def *boxDef, addr uint64) (string, error) {
	key := memoKey{def: def.name, addr: addr}
	// Record the reference first: an enclosing memoized frame must replay
	// this call on reuse even when the box is already materialized here.
	r.noteChild(def.name, addr)
	if id, ok := r.memo[key]; ok {
		return id, nil
	}
	if len(r.g.Boxes) >= r.in.MaxObjects {
		return "", fmt.Errorf("viewcl: object budget exceeded (%d boxes)", r.in.MaxObjects)
	}
	if r.in.Memo != nil {
		if id, ok, err := r.reuseBox(key); err != nil {
			return "", err
		} else if ok {
			return id, nil
		}
	}
	return r.buildBox(key, def, addr)
}

// reuseBox serves def@addr from the cross-run memo when its recorded bytes
// verify clean. The clone's items reference child IDs by value, so the
// recorded children are re-materialized (usually memo hits themselves) in
// the original order — behind a pre-tainted barrier frame so their refs
// don't leak into whatever frame is currently recording.
func (r *runState) reuseBox(key memoKey) (string, bool, error) {
	e := r.in.Memo.lookup(key)
	if e == nil {
		return "", false, nil
	}
	// The verification is spanned so steady-state rounds attribute their
	// time to memo verification (generation checks, hash re-reads) instead
	// of hiding it in the surrounding box build.
	vsp := r.tr.StartSpan("memo.verify")
	if vsp != nil {
		vsp.Tag("key", key.String())
	}
	ok := r.in.Memo.verify(key, e)
	if !ok {
		vsp.Tag("verdict", "rejected")
	}
	vsp.End()
	if !ok {
		return "", false, nil
	}
	b := e.box.Clone()
	r.memo[key] = b.ID
	r.g.Add(b)
	r.reused++
	r.in.Memo.noteReuse()
	if r.in.Obs != nil {
		r.in.Obs.BoxReuses.Inc()
	}
	r.noteRanges(e.merged)
	r.frames = append(r.frames, &memoFrame{tainted: true})
	defer func() { r.frames = r.frames[:len(r.frames)-1] }()
	for _, c := range e.children {
		cdef, ok := r.in.defs[c.def]
		if !ok {
			// The definition set changed under the memo; the reference
			// cannot be satisfied, so the entry is unusable going forward.
			r.in.Memo.reject(key)
			continue
		}
		if _, err := r.materialize(cdef, c.addr); err != nil {
			return "", false, err
		}
	}
	return b.ID, true, nil
}

// buildBox materializes def@addr cold, recording its own-frame reads and
// child references so the memo can replay it next run.
func (r *runState) buildBox(key memoKey, def *boxDef, addr uint64) (string, error) {
	id := graph.BoxID(def.name, addr)
	// The recording frame only exists when a cross-run Memo will consume it;
	// memo-less runs skip the allocation and the read/child bookkeeping.
	var fr *memoFrame
	if r.in.Memo != nil {
		fr = newMemoFrame()
	}
	// Distinct defs over the same address must stay distinct boxes.
	if _, clash := r.g.Get(id); clash {
		id = fmt.Sprintf("%s#%d", id, r.nextVboxN())
		fr.taint() // '#N' identity: never reusable
	}
	r.memo[key] = id
	b := r.g.NewBoxIn(id, def.name, def.ctype.Name, addr)
	r.g.Add(b)
	r.built++
	if r.in.Obs != nil {
		r.in.Obs.BoxBuilds.Inc()
	}
	if fr != nil {
		r.frames = append(r.frames, fr)
		defer func() { r.frames = r.frames[:len(r.frames)-1] }()
	}

	sp := r.tr.StartSpan("box:" + def.name)
	sp.TagHex("addr", addr)
	var reads0 uint64
	if sp != nil {
		reads0, _ = r.tgt().Stats().Snapshot()
	}

	// Batch-fetch the whole object before walking its fields: on
	// snapshot-backed targets this is one transaction instead of one per
	// Text/Link item, which is where the KGDB latency model bleeds.
	target.ReadStruct(r.tgt(), addr, def.ctype)

	if def.comp != nil && r.exec != nil {
		// Compiled instance: slot frame with @this at slot 0 and lazy
		// where-binding slots, views evaluated through the closure chain.
		r.runCompiledViews(def, addr, b, fr)
	} else {
		// Instance scope: @this plus lazy where-bindings.
		sc := newScope(nil)
		sc.defineVal("this", vval{kind: vC, c: expr.MakePointer(def.ctype, addr)})
		for i := range def.where {
			sc.define(def.where[i].Name, def.where[i].Expr)
		}

		for _, rv := range def.views {
			vsp := r.tr.StartSpan("view:" + rv.name)
			gv := &graph.View{Name: rv.name}
			for _, item := range rv.items {
				gi, err := r.evalItem(item, sc)
				if err != nil {
					// Non-fatal: record the issue, keep the item as error
					// text. The error may be transient, so the box is not
					// memoizable.
					r.notef(0, "%s.%s: %v", def.name, itemName(item), err)
					gi = graph.Item{Kind: graph.ItemText, Name: itemName(item), Value: "<error>"}
					fr.taint()
				}
				gv.Items = append(gv.Items, gi)
			}
			b.AddView(gv)
			vsp.End()
		}
	}
	if sp != nil {
		reads1, _ := r.tgt().Stats().Snapshot()
		sp.TagUint("reads", reads1-reads0)
	}
	sp.End()
	if r.in.Memo != nil && !fr.tainted {
		r.in.Memo.store(key, b, fr)
	}
	return id, nil
}

func itemName(it ItemDecl) string {
	switch x := it.(type) {
	case *TextItem:
		return x.Name
	case *LinkItem:
		return x.Name
	case *ContainerItem:
		return x.Name
	case *BoxItem:
		return x.Name
	}
	return "?"
}

// evalItem evaluates one view item into its graph form.
func (r *runState) evalItem(it ItemDecl, sc *scope) (graph.Item, error) {
	switch x := it.(type) {
	case *TextItem:
		var cv expr.Value
		var err error
		if x.Expr != nil {
			var v vval
			v, err = r.eval(x.Expr, sc)
			if err == nil {
				cv, err = r.toCValue(v)
			}
		} else {
			src := "@this->" + x.Path
			var ex *expr.Expr
			ex, err = expr.Parse(src, r.in.Env.Types())
			if err == nil {
				cv, err = ex.Eval(r.cEnv(sc))
			}
		}
		if err != nil {
			return graph.Item{}, err
		}
		return r.textItem(x.Name, x.Fmt, cv, r.cEnv(sc)), nil

	case *LinkItem:
		v, err := r.eval(x.Target, sc)
		if err != nil {
			return graph.Item{}, err
		}
		return r.linkItem(x.Name, v)

	case *ContainerItem:
		v, err := r.eval(x.Expr, sc)
		if err != nil {
			return graph.Item{}, err
		}
		return r.containerItem(x.Name, v)

	case *BoxItem:
		v, err := r.eval(x.Expr, sc)
		if err != nil {
			return graph.Item{}, err
		}
		return r.boxItem(x.Name, v), nil
	}
	return graph.Item{}, fmt.Errorf("unhandled item %T", it)
}

// textItem, linkItem, containerItem and boxItem turn evaluated values into
// graph items; shared by the interpreted and compiled engines so both emit
// identical item bytes and identical error conditions.

func (r *runState) textItem(name string, f *Format, cv expr.Value, env *expr.Env) graph.Item {
	text, raw, isNum, isStr := r.in.decorate(cv, f, env)
	return graph.Item{Kind: graph.ItemText, Name: name, Value: text, Raw: raw, IsNum: isNum, IsStr: isStr}
}

func (r *runState) linkItem(name string, v vval) (graph.Item, error) {
	gi := graph.Item{Kind: graph.ItemLink, Name: name}
	switch v.kind {
	case vBox:
		gi.TargetID = v.boxID
		if b, ok := r.g.Get(v.boxID); ok {
			gi.Raw, gi.IsNum = b.Addr, true
		}
	case vNull:
		// NULL link: kept with empty target
	case vC:
		if a, ok := addrOf(v.c); ok && a != 0 {
			return graph.Item{}, fmt.Errorf("link target %#x is not a box; wrap it in a Box constructor", a)
		}
	case vCont:
		return graph.Item{}, fmt.Errorf("link target is a container; use Container")
	}
	return gi, nil
}

func (r *runState) containerItem(name string, v vval) (graph.Item, error) {
	gi := graph.Item{Kind: graph.ItemContainer, Name: name}
	switch v.kind {
	case vCont:
		gi.Elems = v.elems
	case vBox:
		gi.Elems = []string{v.boxID}
	case vNull:
	case vC:
		return graph.Item{}, fmt.Errorf("container value is a scalar")
	}
	return gi, nil
}

func (r *runState) boxItem(name string, v vval) graph.Item {
	gi := graph.Item{Kind: graph.ItemBox, Name: name}
	if v.kind == vBox {
		gi.TargetID = v.boxID
	}
	return gi
}

// evalInlineBox materializes an anonymous virtual box closing over sc.
func (r *runState) evalInlineBox(n *InlineBoxNode, sc *scope) (vval, error) {
	if len(r.g.Boxes) >= r.in.MaxObjects {
		return vval{}, fmt.Errorf("viewcl: object budget exceeded")
	}
	id := fmt.Sprintf("box#%d", r.nextVboxN())
	b := r.g.NewBoxIn(id, "Box", "", 0)
	r.g.Add(b)
	inner := newScope(sc)
	for i := range n.Where {
		inner.define(n.Where[i].Name, n.Where[i].Expr)
	}
	gv := &graph.View{Name: "default"}
	for _, item := range n.Items {
		gi, err := r.evalItem(item, inner)
		if err != nil {
			r.notef(n.Line, "inline box %s: %v", itemName(item), err)
			gi = graph.Item{Kind: graph.ItemText, Name: itemName(item), Value: "<error>"}
		}
		gv.Items = append(gv.Items, gi)
	}
	b.AddView(gv)
	return vval{kind: vBox, boxID: id}, nil
}

// plotRoot turns a plotted value into a root box (wrapping containers in a
// virtual box).
func (r *runState) plotRoot(v vval, name string) (string, error) {
	switch v.kind {
	case vBox:
		return v.boxID, nil
	case vCont:
		id := fmt.Sprintf("%s#%d", name, r.nextVboxN())
		b := r.g.NewBoxIn(id, name, "", 0)
		b.AddView(&graph.View{Name: "default", Items: []graph.Item{
			{Kind: graph.ItemContainer, Name: name, Elems: v.elems},
		}})
		r.g.Add(b)
		return id, nil
	case vNull:
		id := fmt.Sprintf("%s#%d", name, r.nextVboxN())
		b := r.g.NewBoxIn(id, name, "", 0)
		b.AddView(&graph.View{Name: "default", Items: []graph.Item{
			{Kind: graph.ItemText, Name: name, Value: "NULL"},
		}})
		r.g.Add(b)
		return id, nil
	default:
		return "", fmt.Errorf("viewcl: cannot plot a raw C value; wrap it in a Box")
	}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// readCString is a tiny convenience shared with decorators.
func readCString(t target.Target, addr uint64, max int) string {
	s, err := target.ReadCString(t, addr, max)
	if err != nil {
		return ""
	}
	return s
}
