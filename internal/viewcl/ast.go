package viewcl

import "visualinux/internal/expr"

// Program is a parsed ViewCL source unit.
type Program struct {
	Source string // name for diagnostics
	Stmts  []Stmt
	// LOC is the number of non-blank, non-comment source lines, reported
	// in the Table 2 reproduction.
	LOC int
}

// Stmt is a top-level statement.
type Stmt interface{ stmt() }

// DefineStmt declares a Box type: define Name as Box<ctype> { views }.
type DefineStmt struct {
	Name  string
	CType string
	Views []*ViewDecl
	Where []Binding
	Line  int
}

// BindStmt is a top-level binding: name = expr.
type BindStmt struct {
	Name string
	Expr VExpr
	Line int
}

// PlotStmt requests plotting of an object graph rooted at Expr.
type PlotStmt struct {
	Expr VExpr
	Line int
}

func (*DefineStmt) stmt() {}
func (*BindStmt) stmt()   {}
func (*PlotStmt) stmt()   {}

// ViewDecl is one view of a box: :name [items] or :parent => :name [items].
type ViewDecl struct {
	Name   string
	Parent string // "" if not inheriting
	Items  []ItemDecl
	Where  []Binding
	Line   int
}

// Binding is a where-clause or block-scope binding.
type Binding struct {
	Name string
	Expr VExpr
	Line int
}

// ItemDecl is a member of a view.
type ItemDecl interface{ item() }

// Format is a text decorator: <kind[:arg]> (Table 1).
type Format struct {
	Kind string // "u64", "int", "bool", "char", "string", "enum", "flag", "fptr", "raw_ptr", "emoji", ...
	Arg  string // base ("x", "d"), enum type name, flag set id, emoji id
}

// TextItem displays a scalar: Text[<fmt>] name[: expr] or Text path.
type TextItem struct {
	Fmt  *Format
	Name string // display label
	Path string // member path when Expr is nil (read @this->Path)
	Expr VExpr  // explicit value expression (may be nil)
	Line int
}

// LinkItem declares an edge: Link name -> expr.
type LinkItem struct {
	Name   string
	Target VExpr
	Line   int
}

// ContainerItem embeds a container value: Container name: expr.
type ContainerItem struct {
	Name string
	Expr VExpr
	Line int
}

// BoxItem embeds a nested box: Box name: expr.
type BoxItem struct {
	Name string
	Expr VExpr
	Line int
}

func (*TextItem) item()      {}
func (*LinkItem) item()      {}
func (*ContainerItem) item() {}
func (*BoxItem) item()       {}

// VExpr is a ViewCL-level expression.
type VExpr interface{ vexpr() }

// CExprNode is a ${...} C expression escape, compiled lazily (the registry
// is only known at evaluation time).
type CExprNode struct {
	Src      string
	Line     int
	compiled *expr.Expr
}

// VarRef references a ViewCL variable: @name.
type VarRef struct {
	Name string
	Line int
}

// ConstructNode instantiates a declared Box over an object:
// Task(@node) or Task<task_struct.se.run_node>(@node).
type ConstructNode struct {
	BoxType string
	Anchor  string // "ctype.member.path" for container_of anchoring; "" direct
	Arg     VExpr
	Line    int
}

// ContainerNode invokes a builtin container converter, optionally mapping
// each element through a forEach closure.
type ContainerNode struct {
	Kind    string // List, HList, RBTree, Array, XArray, PipeRing
	Args    []VExpr
	ForEach *ForEachClause
	Line    int
}

// ForEachClause is |v| { bindings; yield expr }.
type ForEachClause struct {
	Var   string
	Body  []Binding
	Yield VExpr
	Line  int
}

// SwitchNode is ViewCL's polymorphic dispatch.
type SwitchNode struct {
	Scrutinee VExpr
	Cases     []SwitchCase
	Otherwise VExpr // may be nil
	Line      int
}

// SwitchCase matches any of Values.
type SwitchCase struct {
	Values []VExpr
	Result VExpr
}

// SelectFromNode is the distill converter Array.selectFrom(container, Type).
type SelectFromNode struct {
	Container VExpr
	BoxType   string
	Line      int
}

// InlineBoxNode is an anonymous virtual box: Box [ items ] where { ... }.
type InlineBoxNode struct {
	Items []ItemDecl
	Where []Binding
	Line  int
}

// NullNode is the NULL literal.
type NullNode struct{ Line int }

// NumberNode is an integer literal.
type NumberNode struct {
	V    uint64
	Line int
}

// StringNode is a string literal.
type StringNode struct {
	S    string
	Line int
}

func (*CExprNode) vexpr()      {}
func (*VarRef) vexpr()         {}
func (*ConstructNode) vexpr()  {}
func (*ContainerNode) vexpr()  {}
func (*SwitchNode) vexpr()     {}
func (*SelectFromNode) vexpr() {}
func (*InlineBoxNode) vexpr()  {}
func (*NullNode) vexpr()       {}
func (*NumberNode) vexpr()     {}
func (*StringNode) vexpr()     {}
