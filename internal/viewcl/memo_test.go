package viewcl_test

import (
	"testing"

	"visualinux/internal/expr"
	"visualinux/internal/kernelsim"
	"visualinux/internal/render"
	"visualinux/internal/target"
	"visualinux/internal/vclstdlib"
	"visualinux/internal/viewcl"
)

// memoInterp builds an interpreter whose reads go through a
// generation-tagged snapshot and whose box extraction goes through a
// cross-run memo, the way the incremental extractor wires it.
func memoInterp(t *testing.T) (*kernelsim.Kernel, *target.Snapshot, *viewcl.Interp) {
	t.Helper()
	k := kernelsim.Build(kernelsim.Options{})
	snap := target.NewSnapshot(k.Target())
	env := expr.NewEnv(snap)
	kernelsim.RegisterHelpers(env)
	in := viewcl.New(env)
	for id, set := range kernelsim.FlagSets() {
		var fl []viewcl.Flag
		for _, b := range set {
			fl = append(fl, viewcl.Flag{Mask: b.Mask, Name: b.Name})
		}
		in.Flags[id] = fl
	}
	in.Memo = viewcl.NewMemo(snap)
	return k, snap, in
}

// A warm second run must reuse every named box and produce byte-identical
// output — box IDs included, which exercises the vbox-numbering taint
// discipline.
func TestMemoReuseByteIdentical(t *testing.T) {
	_, _, in := memoInterp(t)
	res1, err := in.RunSource("sched", schedProgram)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	res2, err := in.RunSource("sched", schedProgram)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if res2.BoxesReused == 0 {
		t.Fatal("warm run reused nothing")
	}
	if res2.BoxesBuilt != 0 {
		t.Fatalf("warm run rebuilt %d boxes with no mutation", res2.BoxesBuilt)
	}
	if a, b := render.Text(res1.Graph), render.Text(res2.Graph); a != b {
		t.Fatalf("memoized rerun not byte-identical:\n--- cold ---\n%s\n--- warm ---\n%s", a, b)
	}
	st := in.Memo.Stats()
	if st.Reuses == 0 {
		t.Fatal("memo counted no reuses")
	}
}

// Mutating bytes under a memoized box must reject exactly the stale entry:
// after the stop boundary the changed box rebuilds with fresh content while
// untouched boxes keep being served from the memo.
func TestMemoRejectsMutatedBox(t *testing.T) {
	k, snap, in := memoInterp(t)
	res1, err := in.RunSource("sched", schedProgram)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}

	// Flip the vruntime of a task that is actually in the extracted graph
	// (CPU 0's queue — k.Tasks spans all CPUs). Growing the max keeps the
	// RBTree rank order stable, so only content changes, not structure.
	f, err := k.Reg.MustLookup("task_struct").ResolvePath("se.vruntime")
	if err != nil {
		t.Fatalf("resolve se.vruntime: %v", err)
	}
	var maxAddr, maxVR uint64
	for _, b := range res1.Graph.ByType("task_struct") {
		if v, ok := b.Member("se.vruntime"); ok && (maxAddr == 0 || v.Raw > maxVR) {
			maxAddr, maxVR = b.Addr, v.Raw
		}
	}
	if maxAddr == 0 {
		t.Fatal("no task boxes in the cold graph")
	}
	k.Mem.WriteU64(maxAddr+f.Offset, maxVR+1_000_000)
	vr := maxVR

	snap.Advance()
	res, err := in.RunSource("sched", schedProgram)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if res.BoxesBuilt == 0 {
		t.Fatal("mutated box was served stale from the memo")
	}
	if res.BoxesReused == 0 {
		t.Fatal("untouched sibling boxes were not reused")
	}
	if in.Memo.Stats().Rejects == 0 {
		t.Fatal("no memo entry was rejected")
	}
	found := false
	for _, b := range res.Graph.ByType("task_struct") {
		if v, ok := b.Member("se.vruntime"); ok && v.Raw == vr+1_000_000 {
			found = true
		}
	}
	if !found {
		t.Fatal("rebuilt box does not show the mutated vruntime")
	}
}

// Every stdlib figure must be byte-stable under memoized re-extraction —
// the broad taint-correctness sweep (inline boxes, cells, clashes, plot
// roots all consume vbox numbers).
func TestMemoByteStableAcrossStdlib(t *testing.T) {
	_, snap, in := memoInterp(t)
	for _, fig := range vclstdlib.Figures() {
		cold, err := in.RunSource(fig.ID, fig.Program)
		if err != nil {
			t.Fatalf("figure %s cold: %v", fig.ID, err)
		}
		snap.Advance() // stop boundary with no writes: everything revalidates
		warm, err := in.RunSource(fig.ID, fig.Program)
		if err != nil {
			t.Fatalf("figure %s warm: %v", fig.ID, err)
		}
		if a, b := render.Text(cold.Graph), render.Text(warm.Graph); a != b {
			t.Errorf("figure %s drifted under memoized re-extraction", fig.ID)
		}
	}
}

// The memo serves clones: callers mutating a reused graph must never
// corrupt the cached pristine copy.
func TestMemoServesClones(t *testing.T) {
	_, _, in := memoInterp(t)
	res1, err := in.RunSource("sched", schedProgram)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	for _, b := range res1.Graph.Boxes {
		b.Label = "CORRUPTED"
		for _, v := range b.Views {
			for i := range v.Items {
				v.Items[i].Value = "CORRUPTED"
			}
		}
	}
	res2, err := in.RunSource("sched", schedProgram)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	for _, b := range res2.Graph.Boxes {
		if b.Label == "CORRUPTED" {
			t.Fatal("cache returned the caller-mutated box")
		}
	}
}
