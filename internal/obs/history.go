package obs

import (
	"sync"
	"time"
)

// DefaultMetricsHistorySize bounds the push-metrics ring: at the default
// 5 s snapshot interval, 120 points cover the last 10 minutes — enough for
// a sparkline, small enough to never matter.
const DefaultMetricsHistorySize = 120

// MetricsPoint is one periodic registry snapshot: every scalar series by
// name (see Registry.Values), stamped with a monotonically increasing
// sequence number and wall-clock time.
type MetricsPoint struct {
	Seq    uint64             `json:"seq"`
	UnixMS int64              `json:"unix_ms"`
	Values map[string]float64 `json:"values"`
}

// MetricsHistory is a bounded ring of registry snapshots — the push
// counterpart of the pull-only /debug/metrics endpoint, mirroring the slow
// log's shape: fixed capacity, oldest entries dropped, safe for concurrent
// writers and readers. The UI reads it at /debug/metrics/history to draw
// sparklines without running a scraper.
type MetricsHistory struct {
	mu  sync.Mutex
	cap int
	seq uint64
	buf []MetricsPoint // ring in insertion order; len <= cap
}

// NewMetricsHistory creates a ring keeping the most recent n points
// (n <= 0 falls back to DefaultMetricsHistorySize).
func NewMetricsHistory(n int) *MetricsHistory {
	if n <= 0 {
		n = DefaultMetricsHistorySize
	}
	return &MetricsHistory{cap: n}
}

// Snapshot appends one point sampled from r. Nil-safe on both sides.
func (h *MetricsHistory) Snapshot(r *Registry) {
	if h == nil || r == nil {
		return
	}
	vals := r.Values()
	h.mu.Lock()
	defer h.mu.Unlock()
	h.seq++
	p := MetricsPoint{Seq: h.seq, UnixMS: time.Now().UnixMilli(), Values: vals}
	if len(h.buf) < h.cap {
		h.buf = append(h.buf, p)
		return
	}
	copy(h.buf, h.buf[1:])
	h.buf[len(h.buf)-1] = p
}

// Points returns the retained snapshots, oldest first.
func (h *MetricsHistory) Points() []MetricsPoint {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]MetricsPoint, len(h.buf))
	copy(out, h.buf)
	return out
}

// Len reports how many points are retained.
func (h *MetricsHistory) Len() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.buf)
}

// Cap reports the ring capacity.
func (h *MetricsHistory) Cap() int {
	if h == nil {
		return 0
	}
	return h.cap
}

// Start samples r into the ring every interval until the returned stop
// function is called. One goroutine; stop is idempotent and does not
// return until the sampler has exited, so no snapshot lands after it.
func (h *MetricsHistory) Start(r *Registry, interval time.Duration) (stop func()) {
	if h == nil || r == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	var once sync.Once
	go func() {
		defer close(exited)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				// A tick and the stop signal can be ready together;
				// prefer stopping so the last observable Len() is final.
				select {
				case <-done:
					return
				default:
				}
				h.Snapshot(r)
			case <-done:
				return
			}
		}
	}()
	return func() {
		once.Do(func() { close(done) })
		<-exited
	}
}
