package obs

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event JSON array format
// (chrome://tracing, Perfetto). We emit complete ("X") events only.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`  // microseconds
	Dur  int64             `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders span trees as a Chrome trace_event file, one
// track (tid) per root, so `perfbench -trace out.json` drops straight into
// chrome://tracing or Perfetto.
func WriteChromeTrace(w io.Writer, roots ...*SpanExport) error {
	var events []chromeEvent
	for tid, root := range roots {
		if root == nil {
			continue
		}
		root.Walk(func(s *SpanExport) {
			dur := s.DurUS
			if dur == 0 {
				dur = 1 // zero-width events vanish in the viewer
			}
			events = append(events, chromeEvent{
				Name: s.Name, Ph: "X", TS: s.StartUS, Dur: dur,
				PID: 1, TID: tid + 1, Args: s.Tags,
			})
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events, "displayTimeUnit": "ms"})
}
