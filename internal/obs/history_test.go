package obs

import (
	"testing"
	"time"
)

// The ring keeps exactly the newest cap points with monotone sequence
// numbers, dropping the oldest.
func TestMetricsHistoryRing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "test counter")
	h := NewMetricsHistory(3)

	for i := 0; i < 5; i++ {
		c.Inc()
		h.Snapshot(r)
	}
	if h.Cap() != 3 || h.Len() != 3 {
		t.Fatalf("cap/len = %d/%d, want 3/3", h.Cap(), h.Len())
	}
	pts := h.Points()
	for i, p := range pts {
		wantSeq := uint64(3 + i) // points 1 and 2 dropped
		if p.Seq != wantSeq {
			t.Errorf("point %d seq = %d, want %d", i, p.Seq, wantSeq)
		}
		if got := p.Values["test_total"]; got != float64(3+i) {
			t.Errorf("point %d test_total = %v, want %d", i, got, 3+i)
		}
	}
	// Points returns copies: mutating the result must not corrupt the ring.
	pts[0].Values["test_total"] = -1
	if h.Points()[0].Seq != 3 {
		t.Error("ring corrupted by caller mutation")
	}
}

// Nil receivers and registries are inert — the uninstrumented server path.
func TestMetricsHistoryNilSafe(t *testing.T) {
	var h *MetricsHistory
	h.Snapshot(NewRegistry())
	if h.Len() != 0 || h.Cap() != 0 || h.Points() != nil {
		t.Fatal("nil ring not inert")
	}
	NewMetricsHistory(1).Snapshot(nil)
}

// The periodic sampler feeds the ring until stopped; stop is idempotent.
func TestMetricsHistoryStart(t *testing.T) {
	r := NewRegistry()
	h := NewMetricsHistory(8)
	stop := h.Start(r, time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for h.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	stop()
	if h.Len() == 0 {
		t.Fatal("sampler produced no points")
	}
	n := h.Len()
	time.Sleep(5 * time.Millisecond)
	if h.Len() != n {
		t.Fatal("sampler kept running after stop")
	}
}
