package obs

import (
	"sort"
	"strconv"
	"strings"
)

// Stage names the attribution buckets a round's span tree is folded into.
// They follow the span vocabulary the pipeline already emits:
//
//	link        target.read leaves — transactions (and their qXfer
//	            continuations) that crossed the modeled/real debug link
//	revalidate  snapshot.* spans — dirty-range promotion, hash exchange,
//	            stale/sub-page refetch work at incremental stop boundaries
//	memo        memo.verify spans — proving a cached box's bytes unchanged
//	build       plot:/box:/view:/container:/iter spans — materializing
//	            boxes and walking containers (self time, link excluded)
//	render      render spans — serializing a pane for a client
//	other       root self time and anything unclassified
const (
	StageLink       = "link"
	StageRevalidate = "revalidate"
	StageMemo       = "memo"
	StageBuild      = "build"
	StageRender     = "render"
	StageOther      = "other"
)

// StageOf classifies one span name into its attribution bucket.
func StageOf(name string) string {
	switch {
	case name == "target.read":
		return StageLink
	case strings.HasPrefix(name, "snapshot."):
		return StageRevalidate
	case strings.HasPrefix(name, "memo."):
		return StageMemo
	case strings.HasPrefix(name, "box:"), strings.HasPrefix(name, "view:"),
		strings.HasPrefix(name, "container:"), name == "iter",
		strings.HasPrefix(name, "plot:"):
		return StageBuild
	case name == "render":
		return StageRender
	}
	return StageOther
}

// StageShare is one bucket of a round's attribution.
type StageShare struct {
	Stage string  `json:"stage"`
	DurUS int64   `json:"dur_us"`
	Share float64 `json:"share"` // fraction of the round's total
	Spans int     `json:"spans"`
}

// StageBreakdown is a round's time folded into stages. Because every span's
// self time (duration minus the sum of its children) is bucketed somewhere,
// the stages sum to the root's duration up to microsecond rounding — the
// conservation property diagnosis leans on.
type StageBreakdown struct {
	TotalUS int64 `json:"total_us"`
	// ModelNS totals the model_ns tags on link spans: the modeled KGDB
	// link nanoseconds behind the wall-clock numbers (0 on a fast target).
	ModelNS int64        `json:"model_ns"`
	Stages  []StageShare `json:"stages"` // sorted by DurUS descending
}

// Attribute folds a round's span tree into stage buckets by self time:
// each span contributes its duration minus its children's to its own
// stage, so nested stages (a target.read under snapshot.revalidate under
// box:) split the time instead of double-counting it.
func Attribute(tr *SpanExport) *StageBreakdown {
	if tr == nil {
		return nil
	}
	durs := make(map[string]int64)
	spans := make(map[string]int)
	var modelNS int64
	var walk func(s *SpanExport)
	walk = func(s *SpanExport) {
		var childUS int64
		for _, c := range s.Children {
			childUS += c.DurUS
			walk(c)
		}
		self := s.DurUS - childUS
		if self < 0 {
			self = 0
		}
		stage := StageOf(s.Name)
		durs[stage] += self
		spans[stage]++
		if stage == StageLink {
			if v, ok := s.Tags["model_ns"]; ok {
				if n, err := strconv.ParseInt(v, 10, 64); err == nil {
					modelNS += n
				}
			}
		}
	}
	walk(tr)
	b := &StageBreakdown{TotalUS: tr.DurUS, ModelNS: modelNS}
	for stage, d := range durs {
		share := 0.0
		if b.TotalUS > 0 {
			share = float64(d) / float64(b.TotalUS)
		}
		b.Stages = append(b.Stages, StageShare{Stage: stage, DurUS: d, Share: share, Spans: spans[stage]})
	}
	sort.Slice(b.Stages, func(i, j int) bool {
		if b.Stages[i].DurUS != b.Stages[j].DurUS {
			return b.Stages[i].DurUS > b.Stages[j].DurUS
		}
		return b.Stages[i].Stage < b.Stages[j].Stage
	})
	return b
}

// Dominant returns the largest named (non-"other") stage, falling back to
// "other" only when nothing else was observed at all.
func (b *StageBreakdown) Dominant() StageShare {
	if b == nil {
		return StageShare{}
	}
	for _, s := range b.Stages {
		if s.Stage != StageOther {
			return s
		}
	}
	if len(b.Stages) > 0 {
		return b.Stages[0]
	}
	return StageShare{}
}

// Stage returns the named bucket (zero when absent).
func (b *StageBreakdown) Stage(name string) StageShare {
	if b == nil {
		return StageShare{}
	}
	for _, s := range b.Stages {
		if s.Stage == name {
			return s
		}
	}
	return StageShare{Stage: name}
}

// SumUS totals every bucket — by construction close to TotalUS; tests use
// the pair to assert conservation.
func (b *StageBreakdown) SumUS() int64 {
	if b == nil {
		return 0
	}
	var sum int64
	for _, s := range b.Stages {
		sum += s.DurUS
	}
	return sum
}
