package obs_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"visualinux/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestCounterGaugeHistogram(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d", c.Value())
	}
	if again := r.Counter("c_total", "ignored"); again != c {
		t.Fatal("Counter not idempotent")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v", g.Value())
	}

	h := r.Histogram("h_ms", "a histogram", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("hist count = %d", h.Count())
	}
	if h.Sum() != 555.5 {
		t.Fatalf("hist sum = %v", h.Sum())
	}
}

// TestPrometheusGolden pins the exposition format byte-for-byte: sorted
// base names, inline labels grouped under one TYPE header, cumulative
// buckets with le labels, _sum and _count.
func TestPrometheusGolden(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("vl_demo_reads_total", "demo reads").Add(41)
	r.Counter(`vl_demo_by_figure_total{figure="7-1"}`, "demo per-figure counter").Add(3)
	r.Counter(`vl_demo_by_figure_total{figure="3-6"}`, "demo per-figure counter").Add(5)
	r.Gauge("vl_demo_ratio", "demo ratio").Set(0.75)
	r.GaugeFunc("vl_demo_live", "demo live gauge", func() float64 { return 2 })
	h := r.Histogram(`vl_demo_duration_ms{stage="extract"}`, "demo stage latency", []float64{1, 10, 100})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(5000)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)

	golden := filepath.Join("testdata", "prometheus.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestConcurrentMetrics exercises the registry and its metrics from many
// goroutines; `go test -race` is the actual assertion.
func TestConcurrentMetrics(t *testing.T) {
	r := obs.NewRegistry()
	o := obs.NewObserver()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("shared_total", "shared").Inc()
				r.Histogram("shared_ms", "shared", nil).Observe(float64(i))
				o.ObserveStage("extract", time.Millisecond)
				o.ObserveExtraction("7-1", time.Millisecond)
				o.Slow.Record("w", time.Duration(i)*time.Millisecond, nil)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total", "").Value(); got != 8*200 {
		t.Fatalf("shared counter = %d, want %d", got, 8*200)
	}
	if got := r.Histogram("shared_ms", "", nil).Count(); got != 8*200 {
		t.Fatalf("shared hist = %d, want %d", got, 8*200)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	o.Registry.WritePrometheus(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty exposition")
	}
}
