package obs

import (
	"strings"
	"sync"
	"time"
)

// DefaultTenantLabelCap bounds how many distinct session IDs become metric
// label values. Session IDs are client-chosen strings; exporting one label
// set per ID ever seen would let tenants grow the registry without bound.
const DefaultTenantLabelCap = 64

// TenantMetrics is the session fabric's view into a process registry:
// manager-level lifecycle counters plus per-session series whose label
// cardinality is capped — the first DefaultTenantLabelCap session IDs get
// their own `session="..."` series, later ones aggregate under
// `session="other"`. Deleted sessions release their label slot but keep
// the already-exported series (monotonic counters must not reset), so the
// registry holds at most cap+1 session label values at any point.
type TenantMetrics struct {
	reg *Registry
	cap int

	// Manager lifecycle (unlabeled: one series each).
	Active   *Gauge   // sessions currently resident
	Created  *Counter // sessions admitted
	Deleted  *Counter // sessions deleted by request
	Evicted  *Counter // sessions evicted (idle TTL or memory pressure)
	Rejected *Counter // creations refused by admission control
	MemBytes *Gauge   // total resident kernel footprint

	mu     sync.Mutex
	labels map[string]string // session ID -> label value (ID or "other")
	used   int               // distinct non-overflow labels handed out
}

// NewTenantMetrics wires the fabric series into r. labelCap <= 0 selects
// DefaultTenantLabelCap.
func NewTenantMetrics(r *Registry, labelCap int) *TenantMetrics {
	if labelCap <= 0 {
		labelCap = DefaultTenantLabelCap
	}
	return &TenantMetrics{
		reg:      r,
		cap:      labelCap,
		Active:   r.Gauge("vl_sessions_active", "sessions currently resident in the manager"),
		Created:  r.Counter("vl_sessions_created_total", "sessions admitted by the session manager"),
		Deleted:  r.Counter("vl_sessions_deleted_total", "sessions deleted by client request"),
		Evicted:  r.Counter("vl_sessions_evicted_total", "sessions evicted by idle TTL or memory pressure"),
		Rejected: r.Counter("vl_sessions_rejected_total", "session creations refused by admission control"),
		MemBytes: r.Gauge("vl_sessions_mem_bytes", "total resident simulated-kernel footprint across sessions"),
		labels:   make(map[string]string),
	}
}

// Label resolves a session ID to its bounded label value, allocating a slot
// on first sight and falling back to "other" past the cap.
func (t *TenantMetrics) Label(id string) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if l, ok := t.labels[id]; ok {
		return l
	}
	l := "other"
	if t.used < t.cap {
		l = sanitizeLabel(id)
		t.used++
	}
	t.labels[id] = l
	return l
}

// Release frees id's label slot (called on session delete/evict). The
// exported series stays — counters are monotonic — but a future session
// may claim a fresh label again.
func (t *TenantMetrics) Release(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if l, ok := t.labels[id]; ok {
		delete(t.labels, id)
		if l != "other" {
			t.used--
		}
	}
}

// Requests returns the per-session request counter
// (`vl_session_requests_total{session="..."}`).
func (t *TenantMetrics) Requests(id string) *Counter {
	if t == nil {
		return nil
	}
	return t.reg.Counter(`vl_session_requests_total{session="`+t.Label(id)+`"}`,
		"HTTP requests served per session (label cardinality capped; overflow under session=\"other\")")
}

// ObserveRound records one steady-round duration for the session
// (`vl_session_round_ms{session="..."}`).
func (t *TenantMetrics) ObserveRound(id string, d time.Duration) {
	if t == nil {
		return
	}
	t.reg.Histogram(`vl_session_round_ms{session="`+t.Label(id)+`"}`,
		"per-session steady-round duration (label cardinality capped)", nil).
		Observe(float64(d) / 1e6)
}

// LabelCount reports the distinct non-overflow labels currently allocated.
func (t *TenantMetrics) LabelCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.used
}

// sanitizeLabel keeps session IDs from breaking the exposition format: the
// label value syntax has no room for quotes, backslashes or newlines.
func sanitizeLabel(id string) string {
	if !strings.ContainsAny(id, "\"\\\n") {
		return id
	}
	r := strings.NewReplacer(`"`, `'`, `\`, `/`, "\n", " ")
	return r.Replace(id)
}
