package obs_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"visualinux/internal/obs"
)

func TestSpanTreeExport(t *testing.T) {
	tr := obs.NewTracer("vplot:test")
	plot := tr.StartSpan("plot:main")
	box := tr.StartSpan("box:Task")
	box.TagHex("addr", 0xffff8880)
	box.TagUint("reads", 7)
	box.End()
	read := tr.StartSpan("target.read")
	read.Tag("model_ns", "5000000")
	time.Sleep(time.Millisecond) // durations export in µs; make this span measurable
	read.End()
	plot.End()
	exp := tr.Finish().Export()

	if exp.Name != "vplot:test" {
		t.Fatalf("root name = %q", exp.Name)
	}
	if len(exp.Children) != 1 || exp.Children[0].Name != "plot:main" {
		t.Fatalf("unexpected children: %+v", exp.Children)
	}
	kids := exp.Children[0].Children
	if len(kids) != 2 || kids[0].Name != "box:Task" || kids[1].Name != "target.read" {
		t.Fatalf("unexpected grandchildren: %+v", kids)
	}
	if kids[0].Tags["addr"] != "0xffff8880" || kids[0].Tags["reads"] != "7" {
		t.Fatalf("tags = %v", kids[0].Tags)
	}
	if exp.SumTag("model_ns") != 5000000 {
		t.Fatalf("SumTag(model_ns) = %d", exp.SumTag("model_ns"))
	}
	if got := exp.SumLeaves("target.read"); got <= 0 {
		t.Fatalf("SumLeaves(target.read) = %d, want > 0", got)
	}

	// The export must round-trip as JSON (the /debug/trace payload).
	blob, err := json.Marshal(exp)
	if err != nil {
		t.Fatal(err)
	}
	var back obs.SpanExport
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != exp.Name || len(back.Children) != 1 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}

	tree := exp.FormatTree()
	for _, want := range []string{"vplot:test", "plot:main", "box:Task", "addr=0xffff8880"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("FormatTree missing %q:\n%s", want, tree)
		}
	}
}

func TestSpanStackUnwind(t *testing.T) {
	tr := obs.NewTracer("root")
	a := tr.StartSpan("a")
	b := tr.StartSpan("b")
	b.End()
	// After b ends, new spans should attach under a again.
	c := tr.StartSpan("c")
	c.End()
	a.End()
	exp := tr.Finish().Export()
	if len(exp.Children) != 1 {
		t.Fatalf("root children = %d, want 1", len(exp.Children))
	}
	got := make([]string, 0, 2)
	for _, k := range exp.Children[0].Children {
		got = append(got, k.Name)
	}
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("a's children = %v, want [b c]", got)
	}
}

func TestSpanBudgetDrops(t *testing.T) {
	tr := obs.NewTracer("root")
	tr.SetMaxSpans(4) // root + 3
	for i := 0; i < 10; i++ {
		sp := tr.StartSpan("s")
		sp.End()
	}
	if d := tr.Dropped(); d != 7 {
		t.Fatalf("Dropped = %d, want 7", d)
	}
	tr.Finish()
	exp := tr.Export() // Tracer.Export carries the drop count; Span.Export does not
	if exp.Dropped != 7 {
		t.Fatalf("export Dropped = %d, want 7", exp.Dropped)
	}
	if !strings.Contains(exp.FormatTree(), "7 spans dropped") {
		t.Fatalf("FormatTree does not surface drops:\n%s", exp.FormatTree())
	}
}

func TestStartChildConcurrent(t *testing.T) {
	tr := obs.NewTracer("root")
	parent := tr.StartSpan("fanout")
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			sp := parent.StartChild("worker")
			time.Sleep(time.Microsecond)
			sp.End()
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	parent.End()
	exp := tr.Finish().Export()
	if n := len(exp.Children[0].Children); n != 8 {
		t.Fatalf("fanout children = %d, want 8", n)
	}
}

func TestNilSafety(t *testing.T) {
	// Every one of these would panic if nil-safety regressed; the test is
	// that we reach the end.
	var tr *obs.Tracer
	sp := tr.StartSpan("x")
	sp.Tag("k", "v").TagUint("n", 1).TagHex("a", 2)
	sp.End()
	sp.StartChild("y").End()
	tr.SetMaxSpans(8)
	_ = tr.Dropped()
	_ = tr.Root()
	_ = tr.Finish()
	_ = tr.Export()

	var e *obs.SpanExport
	e.Walk(func(*obs.SpanExport) {})
	_ = e.SumLeaves("")
	_ = e.SumTag("x")
	_ = e.FormatTree()

	var c *obs.Counter
	c.Inc()
	c.Add(3)
	_ = c.Value()
	var g *obs.Gauge
	g.Set(1)
	_ = g.Value()
	var h *obs.Histogram
	h.Observe(1)
	_ = h.Count()
	_ = h.Sum()

	var r *obs.Registry
	_ = r.Counter("x", "")
	_ = r.Gauge("x", "")
	r.GaugeFunc("x", "", func() float64 { return 0 })
	_ = r.Histogram("x", "", nil)
	r.WritePrometheus(&bytes.Buffer{})

	var l *obs.SlowLog
	l.Record("x", time.Second, nil)
	_ = l.Entries()
	_ = l.Len()

	var o *obs.Observer
	o.ObserveStage("extract", time.Second)
	o.ObserveExtraction("7-1", time.Second)
	_ = o.NewTrace("x")
	_ = o.FinishTrace(nil)
}

func TestContextPropagation(t *testing.T) {
	if got := obs.TracerFrom(context.Background()); got != nil {
		t.Fatalf("TracerFrom(empty) = %v", got)
	}
	// A span on an empty context is a nil no-op.
	obs.StartSpan(context.Background(), "x").End()

	tr := obs.NewTracer("root")
	ctx := obs.WithTracer(context.Background(), tr)
	if got := obs.TracerFrom(ctx); got != tr {
		t.Fatalf("TracerFrom = %v, want %v", got, tr)
	}
	obs.StartSpan(ctx, "child").End()
	exp := tr.Finish().Export()
	if len(exp.Children) != 1 || exp.Children[0].Name != "child" {
		t.Fatalf("children = %+v", exp.Children)
	}
}

func TestObserverFinishTraceRecordsDrops(t *testing.T) {
	o := obs.NewObserver()
	tr := o.NewTrace("root")
	tr.SetMaxSpans(2)
	for i := 0; i < 5; i++ {
		tr.StartSpan("s").End()
	}
	exp := o.FinishTrace(tr)
	if exp == nil || exp.Dropped != 4 {
		t.Fatalf("export = %+v, want Dropped=4", exp)
	}
	if got := o.TraceDrops.Value(); got != 4 {
		t.Fatalf("TraceDrops = %d, want 4", got)
	}
}
