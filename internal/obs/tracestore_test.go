package obs_test

import (
	"fmt"
	"sync"
	"testing"

	"visualinux/internal/obs"
)

func smallTrace(name string) *obs.SpanExport {
	return &obs.SpanExport{Name: name, DurUS: 100}
}

func TestTraceStoreBounds(t *testing.T) {
	ts := obs.NewTraceStore(3)
	for i := 1; i <= 5; i++ {
		ts.Record(1, "fig3-6", float64(i), smallTrace(fmt.Sprintf("round%d", i)))
	}
	if ts.Len(1) != 3 {
		t.Fatalf("Len = %d, want depth bound 3", ts.Len(1))
	}
	hist := ts.History(1)
	if len(hist) != 3 || hist[0].DurMS != 3 || hist[2].DurMS != 5 {
		t.Fatalf("history = %+v, want rounds 3..5 oldest first", hist)
	}
	last, ok := ts.Last(1)
	if !ok || last.DurMS != 5 || last.Trace.Name != "round5" {
		t.Fatalf("last = %+v", last)
	}
	if last.Seq <= hist[0].Seq {
		t.Fatalf("seq not monotonic: last %d vs oldest %d", last.Seq, hist[0].Seq)
	}
}

func TestTraceStoreIsRecencyBasedNotSlowest(t *testing.T) {
	// Unlike the slow log, a fast round must replace visibility of a slow
	// one: "why is pane 1 slow?" is about the latest round, always.
	ts := obs.NewTraceStore(2)
	ts.Record(1, "fig3-6", 500, smallTrace("slow"))
	ts.Record(1, "fig3-6", 1, smallTrace("fast"))
	last, _ := ts.Last(1)
	if last.Trace.Name != "fast" {
		t.Fatalf("last = %q, want the most recent round regardless of duration", last.Trace.Name)
	}
}

func TestTraceStorePanesAndNilSafety(t *testing.T) {
	ts := obs.NewTraceStore(0) // default depth
	ts.Record(3, "fig7-1", 1, smallTrace("a"))
	ts.Record(1, "fig3-6", 1, smallTrace("b"))
	ts.Record(2, "fig4-5", 1, nil) // nil trace ignored
	if got := ts.Panes(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("panes = %v, want [1 3]", got)
	}
	if _, ok := ts.Last(2); ok {
		t.Fatal("nil trace must not be retained")
	}

	var nilStore *obs.TraceStore
	nilStore.Record(1, "x", 1, smallTrace("c"))
	if _, ok := nilStore.Last(1); ok {
		t.Fatal("nil store Last must report false")
	}
	if nilStore.Panes() != nil || nilStore.History(1) != nil || nilStore.Len(1) != 0 {
		t.Fatal("nil store accessors must be empty")
	}
}

func TestTraceStoreConcurrent(t *testing.T) {
	ts := obs.NewTraceStore(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ts.Record(g%3, "fig", 1, smallTrace("t"))
				ts.Last(g % 3)
				ts.History(g % 3)
				ts.Panes()
			}
		}(g)
	}
	wg.Wait()
	for _, p := range ts.Panes() {
		if n := ts.Len(p); n != 4 {
			t.Fatalf("pane %d retained %d rounds, want 4", p, n)
		}
	}
}
