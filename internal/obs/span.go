// Package obs is the observability substrate of the pipeline: a
// lightweight, allocation-conscious span tracer, a Prometheus-style metrics
// registry, a slow-extraction log, and trace exporters (JSON tree + Chrome
// trace_event). It is stdlib-only and nil-safe throughout: every method on a
// nil *Tracer, *Span, *Registry, *Counter, *Gauge, *Histogram, *Observer or
// *SlowLog is a no-op, so instrumentation points cost one pointer check when
// observability is off.
//
// The layers below (target) and above (viewcl, core, server, perf) all
// import obs; obs imports nothing of theirs.
package obs

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Tag is one key/value annotation on a span. A slice of Tags beats a map
// for the tiny cardinalities spans carry (2-5 tags): no hashing, no per-map
// allocation.
type Tag struct {
	Key   string
	Value string
}

// Span is one timed region of the extraction pipeline. Spans form a tree;
// children are appended under the tracer's lock, so concurrent goroutines
// may share a tracer as long as they use explicit parents (StartChild).
type Span struct {
	name     string
	start    time.Time
	dur      time.Duration
	tags     []Tag
	children []*Span
	parent   *Span
	tr       *Tracer
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's measured duration (0 before End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.dur
}

// Tag annotates the span.
func (s *Span) Tag(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.tags = append(s.tags, Tag{key, value})
	return s
}

// TagUint annotates the span with a decimal integer.
func (s *Span) TagUint(key string, v uint64) *Span {
	if s == nil {
		return nil
	}
	return s.Tag(key, strconv.FormatUint(v, 10))
}

// TagHex annotates the span with a 0x-prefixed hex integer (addresses).
func (s *Span) TagHex(key string, v uint64) *Span {
	if s == nil {
		return nil
	}
	return s.Tag(key, "0x"+strconv.FormatUint(v, 16))
}

// End closes the span. On the tracer's implicit stack, the parent becomes
// current again. Ending a span twice is harmless (the second End loses).
func (s *Span) End() {
	if s == nil {
		return
	}
	if s.dur == 0 {
		s.dur = time.Since(s.start)
		if s.dur == 0 {
			s.dur = time.Nanosecond // clock granularity floor: keep "ended" visible
		}
	}
	if s.tr != nil {
		s.tr.mu.Lock()
		if s.tr.cur == s {
			s.tr.cur = s.parent
		}
		s.tr.mu.Unlock()
	}
}

// StartChild opens a child span under s explicitly, without touching the
// tracer's current-span stack. Use this when several goroutines fan out
// under one parent span.
func (s *Span) StartChild(name string) *Span {
	if s == nil || s.tr == nil {
		return nil
	}
	return s.tr.newSpan(name, s, false)
}

// DefaultMaxSpans bounds a tracer's span count. Figures can materialize
// tens of thousands of boxes; past the cap new spans are dropped (counted,
// reported in the export) instead of ballooning memory.
const DefaultMaxSpans = 8192

// Tracer collects one trace tree, typically one per VPlot extraction. The
// zero tracer is not usable; NewTracer opens the root span. The tracer
// keeps an implicit current-span stack for the common single-goroutine
// extraction path; StartChild bypasses it for concurrent producers.
type Tracer struct {
	mu      sync.Mutex
	root    *Span
	cur     *Span
	max     int
	count   int
	dropped uint64
}

// NewTracer opens a trace whose root span is named name.
func NewTracer(name string) *Tracer {
	tr := &Tracer{max: DefaultMaxSpans}
	root := &Span{name: name, start: time.Now(), tr: tr}
	tr.root = root
	tr.cur = root
	tr.count = 1
	return tr
}

// SetMaxSpans overrides the span budget (before spans are created).
func (t *Tracer) SetMaxSpans(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.mu.Lock()
	t.max = n
	t.mu.Unlock()
}

// StartSpan opens a child of the current span and makes it current.
// Returns nil (a no-op span) once the span budget is exhausted.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, nil, true)
}

func (t *Tracer) newSpan(name string, parent *Span, makeCurrent bool) *Span {
	t.mu.Lock()
	if t.count >= t.max {
		t.dropped++
		t.mu.Unlock()
		return nil
	}
	t.count++
	if parent == nil {
		parent = t.cur
		if parent == nil {
			parent = t.root
		}
	}
	s := &Span{name: name, start: time.Now(), parent: parent, tr: t}
	parent.children = append(parent.children, s)
	if makeCurrent {
		t.cur = s
	}
	t.mu.Unlock()
	return s
}

// Dropped reports how many spans the budget discarded.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Root returns the root span (nil on a nil tracer).
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span (and with it the trace) and returns it.
func (t *Tracer) Finish() *Span {
	if t == nil {
		return nil
	}
	t.root.End()
	return t.root
}

// --- export -------------------------------------------------------------------

// SpanExport is the immutable, JSON-ready form of a span tree. StartUS is
// relative to the root span, so traces are stable across machines and
// serializable without wall-clock noise.
type SpanExport struct {
	Name     string            `json:"name"`
	StartUS  int64             `json:"start_us"`
	DurUS    int64             `json:"dur_us"`
	Tags     map[string]string `json:"tags,omitempty"`
	Children []*SpanExport     `json:"children,omitempty"`
	// Dropped is set on the root when the tracer's span budget discarded
	// spans — the tree is complete down to that budget, not beyond.
	Dropped uint64 `json:"dropped_spans,omitempty"`
}

// Export snapshots the trace rooted at t into its serializable form.
// Call after Finish; open spans export with their duration so far.
func (t *Tracer) Export() *SpanExport {
	if t == nil || t.root == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	exp := exportSpan(t.root, t.root.start)
	exp.Dropped = t.dropped
	return exp
}

// Export snapshots a single span subtree (start times relative to s).
func (s *Span) Export() *SpanExport {
	if s == nil {
		return nil
	}
	if s.tr != nil {
		s.tr.mu.Lock()
		defer s.tr.mu.Unlock()
	}
	return exportSpan(s, s.start)
}

func exportSpan(s *Span, epoch time.Time) *SpanExport {
	dur := s.dur
	if dur == 0 {
		dur = time.Since(s.start)
	}
	e := &SpanExport{
		Name:    s.name,
		StartUS: s.start.Sub(epoch).Microseconds(),
		DurUS:   dur.Microseconds(),
	}
	if len(s.tags) > 0 {
		e.Tags = make(map[string]string, len(s.tags))
		for _, tg := range s.tags {
			e.Tags[tg.Key] = tg.Value
		}
	}
	for _, c := range s.children {
		e.Children = append(e.Children, exportSpan(c, epoch))
	}
	return e
}

// Walk visits the export tree depth-first, root included.
func (e *SpanExport) Walk(fn func(*SpanExport)) {
	if e == nil {
		return
	}
	fn(e)
	for _, c := range e.Children {
		c.Walk(fn)
	}
}

// SumLeaves totals DurUS over leaves whose name matches name (all leaves
// when name is ""). This is how tests and the trace endpoint relate leaf
// target-read time to whole-extraction time.
func (e *SpanExport) SumLeaves(name string) int64 {
	var sum int64
	e.Walk(func(s *SpanExport) {
		if len(s.Children) == 0 && (name == "" || s.Name == name) {
			sum += s.DurUS
		}
	})
	return sum
}

// SumTag totals an integer-valued tag (e.g. the modeled link nanoseconds a
// target.read span carries) over the whole tree.
func (e *SpanExport) SumTag(key string) int64 {
	var sum int64
	e.Walk(func(s *SpanExport) {
		if v, ok := s.Tags[key]; ok {
			if n, err := strconv.ParseInt(v, 10, 64); err == nil {
				sum += n
			}
		}
	})
	return sum
}

// FormatTree renders the export as an indented text tree (the v-trace
// command's output).
func (e *SpanExport) FormatTree() string {
	if e == nil {
		return "(no trace)\n"
	}
	var sb strings.Builder
	var rec func(s *SpanExport, depth int)
	rec = func(s *SpanExport, depth int) {
		fmt.Fprintf(&sb, "%s%s  %.3fms", strings.Repeat("  ", depth), s.Name, float64(s.DurUS)/1000)
		if len(s.Tags) > 0 {
			keys := make([]string, 0, len(s.Tags))
			for k := range s.Tags {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			sb.WriteString("  {")
			for i, k := range keys {
				if i > 0 {
					sb.WriteString(" ")
				}
				fmt.Fprintf(&sb, "%s=%s", k, s.Tags[k])
			}
			sb.WriteString("}")
		}
		sb.WriteString("\n")
		for _, c := range s.Children {
			rec(c, depth+1)
		}
	}
	rec(e, 0)
	if e.Dropped > 0 {
		fmt.Fprintf(&sb, "(%d spans dropped over budget)\n", e.Dropped)
	}
	return sb.String()
}

// --- context propagation ------------------------------------------------------

type tracerKey struct{}

// WithTracer returns a context carrying the tracer.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, tr)
}

// TracerFrom extracts the tracer from ctx (nil when absent — and every obs
// method is nil-safe, so callers use the result unconditionally).
func TracerFrom(ctx context.Context) *Tracer {
	tr, _ := ctx.Value(tracerKey{}).(*Tracer)
	return tr
}

// StartSpan opens a span on the context's tracer. The caller must End it.
func StartSpan(ctx context.Context, name string) *Span {
	return TracerFrom(ctx).StartSpan(name)
}

// TracerCarrier is implemented by instrumented target wrappers that accept
// the per-extraction tracer (the interpreter attaches it for the duration
// of a run so link transactions appear as leaf spans of the plot's tree).
type TracerCarrier interface {
	SetTracer(*Tracer)
}
