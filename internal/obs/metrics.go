package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Nil-safe; atomic.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. Stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set assigns the gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefaultBucketsMS is the latency histogram layout used across the
// pipeline, in milliseconds: fine around interactive costs, coarse at the
// multi-second tail the paper's KGDB column lives in.
var DefaultBucketsMS = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// Histogram counts observations into cumulative buckets (Prometheus
// semantics: bucket i counts observations <= bound i, plus +Inf).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultBucketsMS
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the total of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Metric names may carry a label set inline, e.g.
// `vl_extraction_duration_ms{figure="7-1"}` — series of one base name are
// grouped under a single HELP/TYPE header. Get-or-create accessors make
// registration idempotent, so every extraction worker can grab the same
// series without coordination.
type Registry struct {
	mu      sync.Mutex
	help    map[string]string // base name -> help
	kind    map[string]string // base name -> counter|gauge|histogram
	counter map[string]*Counter
	gauge   map[string]*Gauge
	gfunc   map[string]func() float64
	hist    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		help:    make(map[string]string),
		kind:    make(map[string]string),
		counter: make(map[string]*Counter),
		gauge:   make(map[string]*Gauge),
		gfunc:   make(map[string]func() float64),
		hist:    make(map[string]*Histogram),
	}
}

// baseName strips an inline label set: `x{y="z"}` -> `x`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labelPart returns the inline label set without braces ("" when none).
func labelPart(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return strings.TrimSuffix(name[i+1:], "}")
	}
	return ""
}

func (r *Registry) describe(name, help, kind string) {
	base := baseName(name)
	if _, ok := r.kind[base]; !ok {
		r.kind[base] = kind
		r.help[base] = help
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counter[name]; ok {
		return c
	}
	r.describe(name, help, "counter")
	c := &Counter{}
	r.counter[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauge[name]; ok {
		return g
	}
	r.describe(name, help, "gauge")
	g := &Gauge{}
	r.gauge[name] = g
	return g
}

// DropGauge removes a gauge series from the registry. Per-client stream
// gauges (`vl_stream_client_lag_ms{client="s3"}`) are registered while the
// client is connected and dropped on disconnect; without this the
// exposition would accumulate one dead series per client ever seen, which
// under connection churn is unbounded. Base-name HELP/TYPE metadata is
// retained while any sibling series survives, and dropped with the last
// one.
func (r *Registry) DropGauge(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gauge[name]; !ok {
		return
	}
	delete(r.gauge, name)
	base := baseName(name)
	for have := range r.gauge {
		if baseName(have) == base {
			return
		}
	}
	for have := range r.gfunc {
		if baseName(have) == base {
			return
		}
	}
	delete(r.kind, base)
	delete(r.help, base)
}

// GaugeFunc registers a callback gauge, evaluated at exposition time
// (e.g. a live cache hit ratio computed from two counters).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gfunc[name]; ok {
		return
	}
	r.describe(name, help, "gauge")
	r.gfunc[name] = fn
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (nil bounds = DefaultBucketsMS).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hist[name]; ok {
		return h
	}
	r.describe(name, help, "histogram")
	h := newHistogram(bounds)
	r.hist[name] = h
	return h
}

// mergeLabels joins an inline label set with one extra label (le=...).
func mergeLabels(labels, extra string) string {
	switch {
	case labels == "":
		return "{" + extra + "}"
	default:
		return "{" + labels + "," + extra + "}"
	}
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Values returns a point-in-time numeric snapshot of every scalar series:
// counters, gauges, and callback gauges by full series name, plus
// `<name>_count` and `<name>_sum` for histograms. This is what the metrics
// history ring stores — numbers a UI can chart directly, without parsing
// the exposition text.
func (r *Registry) Values() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counter)+len(r.gauge)+len(r.gfunc)+2*len(r.hist))
	for name, c := range r.counter {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauge {
		out[name] = g.Value()
	}
	for name, fn := range r.gfunc {
		out[name] = fn()
	}
	for name, h := range r.hist {
		out[name+"_count"] = float64(h.Count())
		out[name+"_sum"] = h.Sum()
	}
	return out
}

// WritePrometheus renders every metric in the text exposition format,
// deterministically ordered (sorted by base name, then series name) so the
// output is golden-file testable.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	bases := make([]string, 0, len(r.kind))
	for b := range r.kind {
		bases = append(bases, b)
	}
	sort.Strings(bases)

	seriesOf := func(base string, all []string) []string {
		var out []string
		for _, name := range all {
			if baseName(name) == base {
				out = append(out, name)
			}
		}
		sort.Strings(out)
		return out
	}
	counterNames := make([]string, 0, len(r.counter))
	for n := range r.counter {
		counterNames = append(counterNames, n)
	}
	gaugeNames := make([]string, 0, len(r.gauge)+len(r.gfunc))
	for n := range r.gauge {
		gaugeNames = append(gaugeNames, n)
	}
	for n := range r.gfunc {
		gaugeNames = append(gaugeNames, n)
	}
	histNames := make([]string, 0, len(r.hist))
	for n := range r.hist {
		histNames = append(histNames, n)
	}

	for _, base := range bases {
		if help := r.help[base]; help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", base, help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", base, r.kind[base])
		switch r.kind[base] {
		case "counter":
			for _, name := range seriesOf(base, counterNames) {
				fmt.Fprintf(w, "%s %d\n", name, r.counter[name].Value())
			}
		case "gauge":
			for _, name := range seriesOf(base, gaugeNames) {
				if g, ok := r.gauge[name]; ok {
					fmt.Fprintf(w, "%s %s\n", name, formatFloat(g.Value()))
				} else {
					fmt.Fprintf(w, "%s %s\n", name, formatFloat(r.gfunc[name]()))
				}
			}
		case "histogram":
			for _, name := range seriesOf(base, histNames) {
				h := r.hist[name]
				labels := labelPart(name)
				cum := uint64(0)
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					fmt.Fprintf(w, "%s_bucket%s %d\n", base, mergeLabels(labels, `le="`+formatFloat(bound)+`"`), cum)
				}
				cum += h.counts[len(h.bounds)].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", base, mergeLabels(labels, `le="+Inf"`), cum)
				suffix := ""
				if labels != "" {
					suffix = "{" + labels + "}"
				}
				fmt.Fprintf(w, "%s_sum%s %s\n", base, suffix, formatFloat(h.Sum()))
				fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, h.Count())
			}
		}
	}
}
