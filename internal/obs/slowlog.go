package obs

import (
	"sort"
	"sync"
	"time"
)

// SlowEntry is one retained slow extraction: what ran, how long it took,
// and the full span tree behind the number.
type SlowEntry struct {
	Label string      `json:"label"`  // e.g. "pane 3 (fig3-6)"
	DurMS float64     `json:"dur_ms"` // extraction duration
	Seq   uint64      `json:"seq"`    // monotonic admission order
	Trace *SpanExport `json:"trace,omitempty"`
}

// SlowLog is a bounded log of the N slowest extractions observed so far —
// the "why was that pane slow?" ring the server exposes at /debug/slowlog.
// Admission is by duration: once full, an entry must beat the current
// fastest retained entry to get in. Retention is per label: only the
// slowest round of each label is kept, so one hot pane's burst of slow
// rounds occupies a single slot instead of evicting every other pane's
// trace (diagnosis depends on each pane's record surviving).
type SlowLog struct {
	mu      sync.Mutex
	max     int
	seq     uint64
	entries []SlowEntry // sorted by DurMS descending; at most one per Label
}

// DefaultSlowLogSize is the retained-entry count of NewObserver's log.
const DefaultSlowLogSize = 16

// NewSlowLog creates a log retaining the n slowest entries.
func NewSlowLog(n int) *SlowLog {
	if n <= 0 {
		n = DefaultSlowLogSize
	}
	return &SlowLog{max: n}
}

// Record offers an extraction to the log.
func (l *SlowLog) Record(label string, dur time.Duration, trace *SpanExport) {
	if l == nil {
		return
	}
	ms := float64(dur.Nanoseconds()) / 1e6
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	// One slot per label: a repeat offer either upgrades the label's
	// retained entry (new personal worst) or is dropped outright.
	for i := range l.entries {
		if l.entries[i].Label != label {
			continue
		}
		if ms <= l.entries[i].DurMS {
			return
		}
		l.entries = append(l.entries[:i], l.entries[i+1:]...)
		break
	}
	if len(l.entries) >= l.max && ms <= l.entries[len(l.entries)-1].DurMS {
		return
	}
	e := SlowEntry{Label: label, DurMS: ms, Seq: l.seq, Trace: trace}
	i := sort.Search(len(l.entries), func(i int) bool { return l.entries[i].DurMS < ms })
	l.entries = append(l.entries, SlowEntry{})
	copy(l.entries[i+1:], l.entries[i:])
	l.entries[i] = e
	if len(l.entries) > l.max {
		l.entries = l.entries[:l.max]
	}
}

// Entries returns the retained entries, slowest first.
func (l *SlowLog) Entries() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Len reports how many entries are retained.
func (l *SlowLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}
