package obs

import (
	"sort"
	"sync"
)

// DefaultTraceStoreDepth is how many rounds of span trees TraceStore keeps
// per pane. Diagnosis needs the latest round plus enough history to form a
// steady-state baseline and answer "what changed since the last stop".
const DefaultTraceStoreDepth = 8

// TraceRecord is one retained extraction round for a pane: the full span
// tree plus enough identity to answer questions about it without touching
// /debug/trace.
type TraceRecord struct {
	Pane   int         `json:"pane"`
	Figure string      `json:"figure"` // extraction name, e.g. "fig3-6"
	Seq    uint64      `json:"seq"`    // store-wide admission order
	DurMS  float64     `json:"dur_ms"` // whole-round wall duration
	Trace  *SpanExport `json:"trace,omitempty"`
}

// TraceStore retains the last N span trees per pane — the substrate the
// vchat diagnosis layer reads instead of the /debug/trace endpoint. Unlike
// the SlowLog (slowest-per-label, admission by duration), the store is
// purely recency-based: every round is kept, bounded per pane, so "why is
// pane 3 slow?" always finds pane 3's latest tree even when pane 3 was
// never slow enough for the slow log.
//
// Safe for concurrent writers and readers; nil-safe like the rest of obs.
type TraceStore struct {
	mu    sync.Mutex
	depth int
	seq   uint64
	byID  map[int][]TraceRecord // oldest first, len <= depth
}

// NewTraceStore creates a store keeping the last depth rounds per pane
// (depth <= 0 falls back to DefaultTraceStoreDepth).
func NewTraceStore(depth int) *TraceStore {
	if depth <= 0 {
		depth = DefaultTraceStoreDepth
	}
	return &TraceStore{depth: depth, byID: make(map[int][]TraceRecord)}
}

// Record retains one extraction round for a pane, evicting the pane's
// oldest round beyond the depth bound. A nil trace is ignored.
func (ts *TraceStore) Record(pane int, figure string, durMS float64, trace *SpanExport) {
	if ts == nil || trace == nil {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.seq++
	recs := append(ts.byID[pane], TraceRecord{
		Pane: pane, Figure: figure, Seq: ts.seq, DurMS: durMS, Trace: trace,
	})
	if len(recs) > ts.depth {
		recs = append(recs[:0], recs[len(recs)-ts.depth:]...)
	}
	ts.byID[pane] = recs
}

// Last returns a pane's most recent round.
func (ts *TraceStore) Last(pane int) (TraceRecord, bool) {
	if ts == nil {
		return TraceRecord{}, false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	recs := ts.byID[pane]
	if len(recs) == 0 {
		return TraceRecord{}, false
	}
	return recs[len(recs)-1], true
}

// History returns a pane's retained rounds, oldest first.
func (ts *TraceStore) History(pane int) []TraceRecord {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]TraceRecord, len(ts.byID[pane]))
	copy(out, ts.byID[pane])
	return out
}

// Panes lists every pane with at least one retained round, ascending.
func (ts *TraceStore) Panes() []int {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]int, 0, len(ts.byID))
	for id := range ts.byID {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Len reports how many rounds are retained for a pane.
func (ts *TraceStore) Len(pane int) int {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.byID[pane])
}
