package obs_test

import (
	"testing"

	"visualinux/internal/obs"
)

// syntheticRound builds a span tree shaped like a real incremental
// extraction round, with millisecond-scale durations so bucket math is
// exact: a 10 ms root whose box build nests snapshot revalidation, which
// nests link reads; plus memo verification with its own link read.
func syntheticRound() *obs.SpanExport {
	return &obs.SpanExport{
		Name: "vplot:fig3-6", DurUS: 10000, // 0.5ms self
		Children: []*obs.SpanExport{
			{Name: "plot:thread", DurUS: 9000, // 1ms self
				Children: []*obs.SpanExport{
					{Name: "box:Task", DurUS: 7000, // 1ms self
						Children: []*obs.SpanExport{
							{Name: "snapshot.revalidate", DurUS: 4000, // 1ms self
								Children: []*obs.SpanExport{
									{Name: "target.read", DurUS: 2000, Tags: map[string]string{"model_ns": "1500000"}},
									{Name: "snapshot.subpage", DurUS: 1000},
								}},
							{Name: "memo.verify", DurUS: 2000, // 1.5ms self
								Children: []*obs.SpanExport{
									{Name: "target.read", DurUS: 500, Tags: map[string]string{"model_ns": "400000"}},
								}},
						}},
					{Name: "container:list", DurUS: 1000}, // 1ms build self
				}},
			{Name: "render", DurUS: 500},
		},
	}
}

func TestAttributeConservationAndBuckets(t *testing.T) {
	b := obs.Attribute(syntheticRound())
	if b.TotalUS != 10000 {
		t.Fatalf("TotalUS = %d", b.TotalUS)
	}
	// Self-time bucketing conserves the root total exactly on this tree.
	if b.SumUS() != b.TotalUS {
		t.Fatalf("sum %d != total %d: attribution leaked time", b.SumUS(), b.TotalUS)
	}
	want := map[string]int64{
		obs.StageLink:       2500, // both target.read leaves
		obs.StageRevalidate: 2000, // revalidate self (1000) + subpage (1000)
		obs.StageMemo:       1500, // memo.verify minus its link read
		obs.StageBuild:      3000, // plot + box + container self time
		obs.StageRender:     500,
		obs.StageOther:      500, // root self time
	}
	for stage, us := range want {
		if got := b.Stage(stage).DurUS; got != us {
			t.Fatalf("stage %s = %dus, want %d", stage, got, us)
		}
	}
	if b.ModelNS != 1900000 {
		t.Fatalf("ModelNS = %d, want sum of model_ns tags", b.ModelNS)
	}
	if dom := b.Dominant(); dom.Stage != obs.StageBuild {
		t.Fatalf("dominant = %q, want build", dom.Stage)
	}
	// Shares are fractions of the total.
	if s := b.Stage(obs.StageLink).Share; s < 0.24 || s > 0.26 {
		t.Fatalf("link share = %v, want 0.25", s)
	}
}

func TestAttributeDominantSkipsOther(t *testing.T) {
	// A tree where unclassified self time is the largest bucket: Dominant
	// must still point at a named stage so diagnosis never answers "other".
	tr := &obs.SpanExport{
		Name: "vplot:x", DurUS: 1000,
		Children: []*obs.SpanExport{{Name: "target.read", DurUS: 100}},
	}
	b := obs.Attribute(tr)
	if b.Stage(obs.StageOther).DurUS != 900 {
		t.Fatalf("other = %d", b.Stage(obs.StageOther).DurUS)
	}
	if dom := b.Dominant(); dom.Stage != obs.StageLink {
		t.Fatalf("dominant = %q, want the largest NAMED stage", dom.Stage)
	}
}

func TestAttributeClampsNegativeSelfTime(t *testing.T) {
	// Children reported longer than the parent (rounding): self time clamps
	// to zero instead of going negative.
	tr := &obs.SpanExport{
		Name: "box:T", DurUS: 10,
		Children: []*obs.SpanExport{{Name: "target.read", DurUS: 15}},
	}
	b := obs.Attribute(tr)
	if got := b.Stage(obs.StageBuild).DurUS; got != 0 {
		t.Fatalf("build self = %d, want clamped 0", got)
	}
}

func TestAttributeNil(t *testing.T) {
	if obs.Attribute(nil) != nil {
		t.Fatal("nil tree must attribute to nil")
	}
	var b *obs.StageBreakdown
	if b.Dominant().Stage != "" || b.SumUS() != 0 || b.Stage(obs.StageLink).DurUS != 0 {
		t.Fatal("nil breakdown accessors must be zero")
	}
}

func TestStageOf(t *testing.T) {
	cases := map[string]string{
		"target.read":         obs.StageLink,
		"snapshot.revalidate": obs.StageRevalidate,
		"snapshot.subpage":    obs.StageRevalidate,
		"snapshot.refetch":    obs.StageRevalidate,
		"memo.verify":         obs.StageMemo,
		"box:Task":            obs.StageBuild,
		"view:threads":        obs.StageBuild,
		"container:list":      obs.StageBuild,
		"iter":                obs.StageBuild,
		"plot:main":           obs.StageBuild,
		"render":              obs.StageRender,
		"vplot:fig3-6":        obs.StageOther,
	}
	for name, want := range cases {
		if got := obs.StageOf(name); got != want {
			t.Fatalf("StageOf(%q) = %q, want %q", name, got, want)
		}
	}
}
