package obs

import (
	"time"
)

// Observer bundles the pieces one serving process shares across every
// extraction: the metrics registry, the slow-extraction log, and the
// pre-registered counter handles the hot paths bump. One Observer is
// created per process (vlserver, visualinux, perfbench -trace) and threaded
// through sessions; per-extraction tracers are created per VPlot and feed
// their results back here.
//
// A nil *Observer disables everything at the cost of a pointer check.
type Observer struct {
	Registry *Registry
	Slow     *SlowLog
	// Traces retains the last few span trees per pane — the store the
	// vchat diagnosis layer answers from (recency-based, unlike the
	// slowest-per-label Slow log).
	Traces *TraceStore

	// Link-level traffic (bumped by target.Instrumented, i.e. only what
	// actually crossed the modeled/real link — snapshot hits never count).
	LinkReads *Counter
	LinkBytes *Counter
	LinkTxns  *Counter
	// LinkContinuations counts continuation packets riding an already-open
	// qXfer transfer on the RSP link: follow-up chunks of a reply the stub
	// has already prepared, i.e. round trips that never re-pay the stub's
	// memory-walk cost (bumped by gdbrsp.Client when instrumented).
	LinkContinuations *Counter

	// Snapshot cache behaviour (bumped by target.Snapshot when wired).
	SnapHits          *Counter // page lookups served from cache
	SnapMisses        *Counter // pages fetched from the underlying target
	SnapFills         *Counter // fill transactions (coalesced page-run reads)
	SnapInvalidations *Counter // Invalidate calls (wholesale cache drops)

	// Incremental (generation-tagged) snapshot behaviour.
	SnapAdvances       *Counter // Advance calls (incremental stop boundaries)
	SnapRevalidations  *Counter // stale pages revalidated by content hash
	SnapPromotions     *Counter // stale pages promoted clean by the write journal
	SnapStaleRefetches *Counter // stale pages refetched whole (no hash capability)
	SnapSubpageFills   *Counter // sub-page (256 B block) refetch runs issued
	SnapZeroCopyFills  *Counter // pages filled by aliasing immutable CoW store pages

	// ViewCL-level behaviour.
	PrefetchHints     *Counter // container-iterator prefetch hints issued
	BatchPrefetchRuns *Counter // coalesced cross-element batch-prefetch fills issued
	Extractions       *Counter // completed VPlot extractions
	TraceDrops        *Counter // spans dropped over tracer budgets

	// Incremental extraction behaviour (bumped by the ViewCL memoizer and
	// the core delta extractor).
	BoxReuses    *Counter // boxes reused from the cross-run memo (clean content)
	BoxBuilds    *Counter // boxes materialized from target reads
	FigureReuses *Counter // whole figures served from the prior VPlot (clean read set)

	// Streaming fan-out behaviour (bumped by stream.Broker and the server's
	// stop-event publisher). Sent counts frames written to a client's wire;
	// Coalesced counts deliveries that stood in for one or more superseded
	// frames; Dropped counts the superseded frames themselves (latest-wins
	// victims on slow clients). CacheHits/CacheMisses prove whether fan-out
	// serialization came from the per-pane serialization cache or had to
	// encode.
	StreamFramesSent      *Counter
	StreamFramesCoalesced *Counter
	StreamFramesDropped   *Counter
	StreamRounds          *Counter // stop-event fan-out rounds published
	StreamCacheHits       *Counter // fan-out frames served from the serialization cache
	StreamCacheMisses     *Counter // fan-out frames that had to serialize
	StreamConnects        *Counter
	StreamDisconnects     *Counter
	StreamClients         *Gauge // currently connected stream clients

	// History is the bounded ring of periodic registry snapshots behind
	// /debug/metrics/history (sparklines without a scraper). Populated by
	// StartMetricsHistory or manual History.Snapshot calls.
	History *MetricsHistory
}

// NewObserver creates a fully wired observer with a fresh registry and a
// DefaultSlowLogSize slow log.
func NewObserver() *Observer {
	r := NewRegistry()
	o := &Observer{
		Registry: r,
		Slow:     NewSlowLog(DefaultSlowLogSize),
		Traces:   NewTraceStore(DefaultTraceStoreDepth),

		LinkReads:         r.Counter("vl_target_link_reads_total", "read transactions that reached the (modeled) debug link"),
		LinkBytes:         r.Counter("vl_target_link_bytes_total", "bytes transferred over the debug link"),
		LinkTxns:          r.Counter("vl_target_link_transactions_total", "link-level round trips"),
		LinkContinuations: r.Counter("vl_target_link_continuations_total", "qXfer continuation packets (chunks of an already-prepared stub reply)"),

		SnapHits:          r.Counter("vl_snapshot_page_hits_total", "snapshot page lookups served from cache"),
		SnapMisses:        r.Counter("vl_snapshot_page_misses_total", "snapshot pages fetched from the underlying target"),
		SnapFills:         r.Counter("vl_snapshot_fill_transactions_total", "coalesced page-run fill reads issued by the snapshot"),
		SnapInvalidations: r.Counter("vl_snapshot_invalidations_total", "snapshot invalidations (stop-event boundaries)"),

		SnapAdvances:       r.Counter("vl_snapshot_advances_total", "incremental stop boundaries (Advance calls)"),
		SnapRevalidations:  r.Counter("vl_snapshot_revalidations_total", "stale snapshot pages revalidated by content hash"),
		SnapPromotions:     r.Counter("vl_snapshot_dirty_promotions_total", "stale snapshot pages promoted clean by the write journal"),
		SnapStaleRefetches: r.Counter("vl_snapshot_stale_refetches_total", "stale snapshot pages refetched whole (no hash capability in the chain)"),
		SnapSubpageFills:   r.Counter("vl_snapshot_subpage_fills_total", "sub-page (256 B block) refetch runs issued by snapshots"),
		SnapZeroCopyFills:  r.Counter("vl_snapshot_zerocopy_fills_total", "snapshot pages filled by aliasing immutable CoW store pages (no copy, no link traffic)"),

		PrefetchHints:     r.Counter("vl_prefetch_hints_total", "container-iterator prefetch hints issued"),
		BatchPrefetchRuns: r.Counter("vl_batch_prefetch_runs_total", "coalesced cross-element batch-prefetch fills issued by snapshots"),
		Extractions:       r.Counter("vl_extractions_total", "completed VPlot extractions"),
		TraceDrops:        r.Counter("vl_trace_dropped_spans_total", "spans dropped over per-trace budgets"),

		BoxReuses:    r.Counter("vl_extract_box_reuse_total", "boxes reused from the cross-run extraction memo"),
		BoxBuilds:    r.Counter("vl_extract_box_builds_total", "boxes materialized from target reads"),
		FigureReuses: r.Counter("vl_extract_figure_reuse_total", "figures served whole from the prior VPlot (clean read set)"),

		StreamFramesSent:      r.Counter("vl_stream_frames_sent_total", "pane delta frames written to stream clients"),
		StreamFramesCoalesced: r.Counter("vl_stream_frames_coalesced_total", "stream deliveries that stood in for superseded frames (latest-wins)"),
		StreamFramesDropped:   r.Counter("vl_stream_frames_dropped_total", "stream frames superseded before delivery on slow clients"),
		StreamRounds:          r.Counter("vl_stream_fanout_rounds_total", "stop-event fan-out rounds published to the stream plane"),
		StreamCacheHits:       r.Counter("vl_stream_serialize_cache_hits_total", "fan-out frames served from the pane serialization cache"),
		StreamCacheMisses:     r.Counter("vl_stream_serialize_cache_misses_total", "fan-out frames that had to serialize a pane"),
		StreamConnects:        r.Counter("vl_stream_connects_total", "stream client subscriptions"),
		StreamDisconnects:     r.Counter("vl_stream_disconnects_total", "stream client disconnects"),
		StreamClients:         r.Gauge("vl_stream_clients", "currently connected stream clients"),

		History: NewMetricsHistory(DefaultMetricsHistorySize),
	}
	r.GaugeFunc("vl_snapshot_hit_ratio", "live page-cache hit ratio (hits / lookups)", func() float64 {
		h, m := o.SnapHits.Value(), o.SnapMisses.Value()
		if h+m == 0 {
			return 0
		}
		return float64(h) / float64(h+m)
	})
	r.GaugeFunc("vl_extract_box_reuse_ratio", "fraction of boxes served from the cross-run memo (reuses / (reuses+builds))", func() float64 {
		re, b := o.BoxReuses.Value(), o.BoxBuilds.Value()
		if re+b == 0 {
			return 0
		}
		return float64(re) / float64(re+b)
	})
	return o
}

// StartMetricsHistory starts the periodic registry snapshotter feeding
// o.History and returns a stop function. Call it once per serving process;
// tests drive o.History.Snapshot directly instead.
func (o *Observer) StartMetricsHistory(interval time.Duration) (stop func()) {
	if o == nil {
		return func() {}
	}
	return o.History.Start(o.Registry, interval)
}

// ObserveStage records a pipeline-stage latency (stage in
// {"extract", "render", "target_read", ...}) into the per-stage histogram.
func (o *Observer) ObserveStage(stage string, d time.Duration) {
	if o == nil {
		return
	}
	o.Registry.Histogram(`vl_stage_duration_ms{stage="`+stage+`"}`,
		"pipeline stage latency by stage", nil).Observe(float64(d.Nanoseconds()) / 1e6)
}

// ObserveExtraction records one completed figure/program extraction into
// its per-figure histogram and the extraction counter.
func (o *Observer) ObserveExtraction(figure string, d time.Duration) {
	if o == nil {
		return
	}
	o.Extractions.Inc()
	o.Registry.Histogram(`vl_extraction_duration_ms{figure="`+figure+`"}`,
		"per-figure extraction duration", nil).Observe(float64(d.Nanoseconds()) / 1e6)
	o.ObserveStage("extract", d)
}

// ObserveFanout records how long one stop-event fan-out round spent
// serializing and enqueueing pane deltas for every connected client.
func (o *Observer) ObserveFanout(d time.Duration) {
	if o == nil {
		return
	}
	o.Registry.Histogram("vl_stream_fanout_ms",
		"stop-event fan-out latency (serialize + enqueue for all clients)", nil).
		Observe(float64(d.Nanoseconds()) / 1e6)
}

// ObservePushLag records one delivered frame's stop-to-wire latency: the
// time between the frame being published at a stop event and a client's
// writer dequeuing it for the wire.
func (o *Observer) ObservePushLag(d time.Duration) {
	if o == nil {
		return
	}
	o.Registry.Histogram("vl_stream_push_lag_ms",
		"per-frame stop-to-wire push latency across stream clients", nil).
		Observe(float64(d.Nanoseconds()) / 1e6)
}

// NewTrace opens a per-extraction tracer. The observer only tracks drop
// accounting; the caller owns the tracer's lifecycle.
func (o *Observer) NewTrace(name string) *Tracer {
	if o == nil {
		return nil
	}
	return NewTracer(name)
}

// FinishTrace finalizes a tracer, records its drop count, and returns the
// exported tree (nil on a nil tracer).
func (o *Observer) FinishTrace(tr *Tracer) *SpanExport {
	if tr == nil {
		return nil
	}
	tr.Finish()
	if d := tr.Dropped(); d > 0 && o != nil {
		o.TraceDrops.Add(d)
	}
	return tr.Export()
}
