package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"visualinux/internal/obs"
)

func TestSlowLogAdmission(t *testing.T) {
	l := obs.NewSlowLog(3)
	l.Record("a", 10*time.Millisecond, nil)
	l.Record("b", 30*time.Millisecond, nil)
	l.Record("c", 20*time.Millisecond, nil)
	l.Record("d", 5*time.Millisecond, nil) // too fast for a full log
	l.Record("e", 40*time.Millisecond, nil)

	got := l.Entries()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	want := []string{"e", "b", "c"}
	for i, w := range want {
		if got[i].Label != w {
			t.Fatalf("entries = %v, want order %v", got, want)
		}
	}
	if got[0].DurMS != 40 {
		t.Fatalf("slowest = %v ms", got[0].DurMS)
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
}

// TestSlowLogHotPaneDoesNotEvictOthers is the regression for the
// diagnosis-breaking bug: pane 1 extracting slowly over and over used to
// fill every slot, evicting pane 2's only retained trace. Retention is one
// slot per label — a repeat offer upgrades the label's entry in place.
func TestSlowLogHotPaneDoesNotEvictOthers(t *testing.T) {
	l := obs.NewSlowLog(3)
	p1 := &obs.SpanExport{Name: "vplot:fig3-6"}
	p2 := &obs.SpanExport{Name: "vplot:fig7-1"}

	// Two panes alternate, then pane 1 goes hot: a burst of rounds each
	// slow enough that the old admission rule would have filled the log.
	l.Record("pane 1 (fig3-6)", 20*time.Millisecond, p1)
	l.Record("pane 2 (fig7-1)", 15*time.Millisecond, p2)
	for i := 0; i < 10; i++ {
		l.Record("pane 1 (fig3-6)", time.Duration(30+i)*time.Millisecond, p1)
	}

	got := l.Entries()
	if len(got) != 2 {
		t.Fatalf("len = %d, want one slot per label: %+v", len(got), got)
	}
	if got[0].Label != "pane 1 (fig3-6)" || got[0].DurMS != 39 {
		t.Fatalf("hot pane slot = %+v, want its personal worst (39ms)", got[0])
	}
	if got[1].Label != "pane 2 (fig7-1)" {
		t.Fatalf("pane 2's trace was evicted by pane 1's burst: %+v", got)
	}
	if got[1].Trace == nil || got[1].Trace.Name != "vplot:fig7-1" {
		t.Fatalf("pane 2 entry lost its trace: %+v", got[1])
	}
}

// A faster repeat of the same label must not downgrade the retained entry.
func TestSlowLogRepeatFasterRoundIgnored(t *testing.T) {
	l := obs.NewSlowLog(3)
	l.Record("pane 1 (fig3-6)", 50*time.Millisecond, nil)
	l.Record("pane 1 (fig3-6)", 10*time.Millisecond, nil)
	got := l.Entries()
	if len(got) != 1 || got[0].DurMS != 50 {
		t.Fatalf("entries = %+v, want the label's worst retained", got)
	}
}

func TestSlowLogKeepsTrace(t *testing.T) {
	tr := obs.NewTracer("root")
	tr.StartSpan("child").End()
	exp := tr.Finish().Export()
	l := obs.NewSlowLog(2)
	l.Record("traced", time.Second, exp)
	got := l.Entries()
	if len(got) != 1 || got[0].Trace == nil || got[0].Trace.Name != "root" {
		t.Fatalf("entries = %+v", got)
	}
	// The slow log is served as JSON by /debug/slowlog.
	if _, err := json.Marshal(got); err != nil {
		t.Fatal(err)
	}
}

func TestChromeTrace(t *testing.T) {
	tr := obs.NewTracer("vplot:fig")
	sp := tr.StartSpan("box:Task")
	sp.Tag("addr", "0x1000")
	sp.End()
	exp := tr.Finish().Export()

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, exp, exp); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// Two roots x two spans each.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("events = %d, want 4", len(doc.TraceEvents))
	}
	tids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("phase = %q, want X", ev.Ph)
		}
		tids[ev.Tid] = true
	}
	if len(tids) != 2 {
		t.Fatalf("tids = %v, want one track per root", tids)
	}
}
