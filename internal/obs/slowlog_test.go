package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"visualinux/internal/obs"
)

func TestSlowLogAdmission(t *testing.T) {
	l := obs.NewSlowLog(3)
	l.Record("a", 10*time.Millisecond, nil)
	l.Record("b", 30*time.Millisecond, nil)
	l.Record("c", 20*time.Millisecond, nil)
	l.Record("d", 5*time.Millisecond, nil) // too fast for a full log
	l.Record("e", 40*time.Millisecond, nil)

	got := l.Entries()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	want := []string{"e", "b", "c"}
	for i, w := range want {
		if got[i].Label != w {
			t.Fatalf("entries = %v, want order %v", got, want)
		}
	}
	if got[0].DurMS != 40 {
		t.Fatalf("slowest = %v ms", got[0].DurMS)
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestSlowLogKeepsTrace(t *testing.T) {
	tr := obs.NewTracer("root")
	tr.StartSpan("child").End()
	exp := tr.Finish().Export()
	l := obs.NewSlowLog(2)
	l.Record("traced", time.Second, exp)
	got := l.Entries()
	if len(got) != 1 || got[0].Trace == nil || got[0].Trace.Name != "root" {
		t.Fatalf("entries = %+v", got)
	}
	// The slow log is served as JSON by /debug/slowlog.
	if _, err := json.Marshal(got); err != nil {
		t.Fatal(err)
	}
}

func TestChromeTrace(t *testing.T) {
	tr := obs.NewTracer("vplot:fig")
	sp := tr.StartSpan("box:Task")
	sp.Tag("addr", "0x1000")
	sp.End()
	exp := tr.Finish().Export()

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, exp, exp); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// Two roots x two spans each.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("events = %d, want 4", len(doc.TraceEvents))
	}
	tids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("phase = %q, want X", ev.Ph)
		}
		tids[ev.Tid] = true
	}
	if len(tids) != 2 {
		t.Fatalf("tids = %v, want one track per root", tids)
	}
}
