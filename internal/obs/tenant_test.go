package obs

import (
	"strings"
	"testing"
	"time"
)

// TestTenantLabelCardinalityBounded checks that an unbounded stream of
// session IDs produces at most cap distinct labels plus "other", and that
// releasing a slot lets a later session claim it.
func TestTenantLabelCardinalityBounded(t *testing.T) {
	r := NewRegistry()
	tm := NewTenantMetrics(r, 4)

	for _, id := range []string{"a", "b", "c", "d"} {
		if got := tm.Label(id); got != id {
			t.Fatalf("Label(%q) = %q, want the ID itself", id, got)
		}
	}
	if got := tm.Label("e"); got != "other" {
		t.Fatalf("Label over cap = %q, want \"other\"", got)
	}
	if got := tm.Label("a"); got != "a" {
		t.Fatalf("existing label re-resolved to %q", got)
	}
	if n := tm.LabelCount(); n != 4 {
		t.Fatalf("LabelCount = %d, want 4", n)
	}

	tm.Release("a")
	if got := tm.Label("f"); got != "f" {
		t.Fatalf("after Release, new session got %q, want its own label", got)
	}

	// Overflow sessions share one series.
	tm.Requests("e").Inc()
	tm.Requests("zz").Inc()
	if got := tm.Requests("e").Value(); got != 2 {
		t.Fatalf("overflow sessions should share session=\"other\": got %d", got)
	}
}

// TestTenantMetricsExposition checks the series render with session labels
// and that IDs carrying exposition-hostile characters are sanitized.
func TestTenantMetricsExposition(t *testing.T) {
	r := NewRegistry()
	tm := NewTenantMetrics(r, 8)
	tm.Created.Inc()
	tm.Active.Set(1)
	tm.Requests("s1").Inc()
	tm.ObserveRound("s1", 3*time.Millisecond)
	tm.Requests("evil\"id").Inc()

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`vl_sessions_created_total 1`,
		`vl_session_requests_total{session="s1"} 1`,
		`vl_session_round_ms_count{session="s1"} 1`,
		`vl_session_requests_total{session="evil'id"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
