package stream

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"visualinux/internal/obs"
)

func frame(pane, version int, body string) *Frame {
	return &Frame{
		Pane: pane, Version: version, Epoch: version, Format: "json",
		ETag: fmt.Sprintf(`W/"p%d.v%d.e%d.json"`, pane, version, version),
		Body: []byte(body),
	}
}

// drain pulls frames until the client has nothing buffered, with a short
// deadline so a broken notify path fails the test instead of hanging it.
func drain(t *testing.T, c *Client, n int) []*Frame {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var out []*Frame
	for len(out) < n {
		f, ok := c.Next(ctx)
		if !ok {
			t.Fatalf("stream ended after %d frames, want %d", len(out), n)
		}
		out = append(out, f)
	}
	return out
}

func TestFastClientReceivesEveryFrameInOrder(t *testing.T) {
	b := NewBroker(obs.NewObserver(), 4)
	defer b.Close()
	c := b.Subscribe("json", nil)

	// Publish in small batches, draining between them like a fast consumer.
	var want []uint64
	for round := uint64(1); round <= 5; round++ {
		frames := []*Frame{frame(1, int(round), "a"), frame(2, int(round), "b")}
		b.Publish(round, frames, nil)
		for _, f := range frames {
			want = append(want, f.Seq)
		}
		for _, f := range drain(t, c, 2) {
			if f.Coalesced {
				t.Fatalf("fast client saw coalesced frame seq=%d", f.Seq)
			}
		}
	}
	h := b.Health()
	if h.Clients[0].FramesSent != 10 || h.Clients[0].FramesDropped != 0 {
		t.Fatalf("fast client health = %+v, want 10 sent / 0 dropped", h.Clients[0])
	}
	if want[len(want)-1] != h.Seq {
		t.Fatalf("broker seq %d, want %d", h.Seq, want[len(want)-1])
	}
}

func TestSlowClientCoalescesToLatest(t *testing.T) {
	o := obs.NewObserver()
	b := NewBroker(o, 2)
	defer b.Close()
	c := b.Subscribe("json", nil)

	// 10 rounds × 3 panes without draining: queue (cap 2) fills, the rest
	// land in per-pane latest-wins slots.
	const rounds = 10
	for r := 1; r <= rounds; r++ {
		b.Publish(uint64(r), []*Frame{
			frame(1, r, fmt.Sprintf("p1v%d", r)),
			frame(2, r, fmt.Sprintf("p2v%d", r)),
			frame(3, r, fmt.Sprintf("p3v%d", r)),
		}, nil)
	}
	if d := c.depth(); d > 2+3 {
		t.Fatalf("buffer depth %d exceeds queueCap+panes=%d", d, 2+3)
	}

	// The client converges: 2 FIFO frames, then exactly one latest frame
	// per pane, marked coalesced.
	frames := drain(t, c, 5)
	if c.depth() != 0 {
		t.Fatalf("depth after drain = %d, want 0", c.depth())
	}
	latest := map[int]*Frame{}
	for _, f := range frames[2:] {
		latest[f.Pane] = f
	}
	for pane := 1; pane <= 3; pane++ {
		f := latest[pane]
		if f == nil {
			t.Fatalf("no converged frame for pane %d", pane)
		}
		if f.Version != rounds {
			t.Fatalf("pane %d converged at version %d, want %d", pane, f.Version, rounds)
		}
		if !f.Coalesced {
			t.Fatalf("pane %d latest-wins frame not marked coalesced", pane)
		}
		if got, want := string(f.Body), fmt.Sprintf("p%dv%d", pane, rounds); got != want {
			t.Fatalf("pane %d body %q, want %q", pane, got, want)
		}
	}
	h := b.Health().Clients[0]
	// 30 published; 2 through the FIFO; 28 went to slots, of which 3 were
	// delivered (one per pane) and 25 superseded.
	if h.FramesDropped != 25 || h.FramesCoalesced != 3 {
		t.Fatalf("dropped=%d coalesced=%d, want 25/3", h.FramesDropped, h.FramesCoalesced)
	}
	if o.StreamFramesDropped.Value() != 25 || o.StreamFramesCoalesced.Value() != 3 {
		t.Fatalf("observer counters dropped=%d coalesced=%d, want 25/3",
			o.StreamFramesDropped.Value(), o.StreamFramesCoalesced.Value())
	}
}

func TestOneSlowManyFastBackpressure(t *testing.T) {
	b := NewBroker(obs.NewObserver(), 4)
	defer b.Close()

	const fastN = 8
	fast := make([]*Client, fastN)
	for i := range fast {
		fast[i] = b.Subscribe("json", nil)
	}
	slow := b.Subscribe("json", nil)

	var wg sync.WaitGroup
	type rec struct {
		seqs  []uint64
		panes map[int]int // pane -> last version seen
	}
	fastGot := make([]rec, fastN)
	for i := range fast {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			r := rec{panes: map[int]int{}}
			for {
				f, ok := fast[i].Next(ctx)
				if !ok {
					break
				}
				r.seqs = append(r.seqs, f.Seq)
				r.panes[f.Pane] = f.Version
			}
			fastGot[i] = r
		}(i)
	}
	slowPanes := map[int]int{}
	var slowCoalesced int
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for {
			f, ok := slow.Next(ctx)
			if !ok {
				return
			}
			if f.Coalesced {
				slowCoalesced++
			}
			slowPanes[f.Pane] = f.Version
			time.Sleep(2 * time.Millisecond) // artificially slow consumer
		}
	}()

	const rounds, panes = 40, 3
	for r := 1; r <= rounds; r++ {
		fs := make([]*Frame, 0, panes)
		for p := 1; p <= panes; p++ {
			fs = append(fs, frame(p, r, fmt.Sprintf("p%dv%d", p, r)))
		}
		b.Publish(uint64(r), fs, nil)
		time.Sleep(500 * time.Microsecond)
	}
	// Let consumers converge, then close to end their loops.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		idle := slow.depth() == 0
		for _, c := range fast {
			idle = idle && c.depth() == 0
		}
		if idle {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	b.Close()
	wg.Wait()

	for i, r := range fastGot {
		if len(r.seqs) != rounds*panes {
			t.Fatalf("fast[%d] got %d frames, want %d (every delta)", i, len(r.seqs), rounds*panes)
		}
		for j := 1; j < len(r.seqs); j++ {
			if r.seqs[j] <= r.seqs[j-1] {
				t.Fatalf("fast[%d] out of order at %d: %d after %d", i, j, r.seqs[j], r.seqs[j-1])
			}
		}
		for p := 1; p <= panes; p++ {
			if r.panes[p] != rounds {
				t.Fatalf("fast[%d] pane %d ended at version %d, want %d", i, p, r.panes[p], rounds)
			}
		}
	}
	// The slow client converged on the final version of every pane and
	// demonstrably coalesced along the way.
	for p := 1; p <= panes; p++ {
		if slowPanes[p] != rounds {
			t.Fatalf("slow pane %d converged at %d, want %d", p, slowPanes[p], rounds)
		}
	}
	if slowCoalesced == 0 {
		t.Fatal("slow client never coalesced despite backlog")
	}
}

func TestSubscriptionAndFormatFilter(t *testing.T) {
	b := NewBroker(nil, 0)
	defer b.Close()
	onlyPane2 := b.Subscribe("json", []int{2})
	textClient := b.Subscribe("text", nil)

	f1 := frame(1, 1, "p1")
	f2 := frame(2, 1, "p2")
	ft := &Frame{Pane: 1, Version: 1, Format: "text", Body: []byte("t1")}
	b.Publish(1, []*Frame{f1, f2, ft}, nil)

	got := drain(t, onlyPane2, 1)
	if got[0].Pane != 2 || got[0].Format != "json" {
		t.Fatalf("subscription filter delivered pane=%d format=%s", got[0].Pane, got[0].Format)
	}
	if d := onlyPane2.depth(); d != 0 {
		t.Fatalf("pane-filtered client still buffers %d frames", d)
	}
	gt := drain(t, textClient, 1)
	if gt[0].Format != "text" {
		t.Fatalf("format filter delivered %s", gt[0].Format)
	}
	if d := textClient.depth(); d != 0 {
		t.Fatalf("format-filtered client still buffers %d frames", d)
	}
}

func TestSnapshotToThenDeltasStayOrdered(t *testing.T) {
	b := NewBroker(nil, 8)
	defer b.Close()
	c := b.Subscribe("json", nil)
	b.SnapshotTo(c, []*Frame{frame(1, 3, "snap1"), frame(2, 3, "snap2")})
	b.Publish(4, []*Frame{frame(1, 4, "delta1")}, nil)

	frames := drain(t, c, 3)
	if !frames[0].Snapshot || !frames[1].Snapshot || frames[2].Snapshot {
		t.Fatalf("snapshot flags = %v %v %v, want true true false",
			frames[0].Snapshot, frames[1].Snapshot, frames[2].Snapshot)
	}
	for i := 1; i < len(frames); i++ {
		if frames[i].Seq <= frames[i-1].Seq {
			t.Fatalf("seq regressed across snapshot/delta boundary: %d then %d",
				frames[i-1].Seq, frames[i].Seq)
		}
	}
}

func TestUnsubscribeDropsGaugesAndRecyclesSlots(t *testing.T) {
	o := obs.NewObserver()
	b := NewBroker(o, 0)
	defer b.Close()

	// Churn: connect/disconnect many clients; bounded slot reuse means the
	// exposition never accumulates per-client series for departed clients.
	for i := 0; i < 50; i++ {
		c := b.Subscribe("json", nil)
		if c.Slot != 0 {
			t.Fatalf("iteration %d: slot %d, want recycled slot 0", i, c.Slot)
		}
		b.Unsubscribe(c)
	}
	var sb strings.Builder
	o.Registry.WritePrometheus(&sb)
	exp := sb.String()
	if strings.Contains(exp, "vl_stream_client_lag_ms") {
		t.Fatal("per-client lag series survived disconnect")
	}
	if strings.Contains(exp, "vl_stream_client_queue_depth") {
		t.Fatal("per-client queue-depth series survived disconnect")
	}
	if got := o.StreamConnects.Value(); got != 50 {
		t.Fatalf("connects = %d, want 50", got)
	}
	if got := o.StreamDisconnects.Value(); got != 50 {
		t.Fatalf("disconnects = %d, want 50", got)
	}
	if got := o.StreamClients.Value(); got != 0 {
		t.Fatalf("clients gauge = %v, want 0", got)
	}

	// Two concurrent clients occupy distinct slots; both series present.
	c1, c2 := b.Subscribe("json", nil), b.Subscribe("json", nil)
	if c1.Slot == c2.Slot {
		t.Fatalf("concurrent clients share slot %d", c1.Slot)
	}
	sb.Reset()
	o.Registry.WritePrometheus(&sb)
	for _, want := range []string{
		`vl_stream_client_lag_ms{client="s0"}`,
		`vl_stream_client_lag_ms{client="s1"}`,
		`vl_stream_client_queue_depth{client="s0"}`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("exposition missing %s", want)
		}
	}
	b.Unsubscribe(c1)
	b.Unsubscribe(c2)
}

func TestDisconnectMidPushLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	b := NewBroker(obs.NewObserver(), 2)

	var wg sync.WaitGroup
	clients := make([]*Client, 16)
	for i := range clients {
		clients[i] = b.Subscribe("json", nil)
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			for {
				if _, ok := c.Next(ctx); !ok {
					return
				}
			}
		}(clients[i])
	}

	// Publish concurrently with mid-stream disconnects.
	var pub sync.WaitGroup
	pub.Add(1)
	go func() {
		defer pub.Done()
		for r := 1; r <= 50; r++ {
			b.Publish(uint64(r), []*Frame{frame(1, r, "x"), frame(2, r, "y")}, nil)
		}
	}()
	for i := range clients {
		if i%2 == 0 {
			b.Unsubscribe(clients[i])
		}
	}
	pub.Wait()
	b.Close()
	wg.Wait()

	if n := b.ClientCount(); n != 0 {
		t.Fatalf("%d clients remain after close", n)
	}
	// The broker spawns no goroutines; only our consumer goroutines existed
	// and wg.Wait proved they exited. Allow slack for runtime background.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestNextDrainsBufferedFramesAfterClose(t *testing.T) {
	b := NewBroker(nil, 8)
	c := b.Subscribe("json", nil)
	b.Publish(1, []*Frame{frame(1, 1, "x"), frame(2, 1, "y")}, nil)
	b.Unsubscribe(c)

	ctx := context.Background()
	if f, ok := c.Next(ctx); !ok || f.Pane != 1 {
		t.Fatalf("first post-close Next = %v %v, want pane 1", f, ok)
	}
	if f, ok := c.Next(ctx); !ok || f.Pane != 2 {
		t.Fatalf("second post-close Next = %v %v, want pane 2", f, ok)
	}
	if _, ok := c.Next(ctx); ok {
		t.Fatal("Next reported a frame after drain on a closed client")
	}
}

func TestPublishRecordsFanoutSpans(t *testing.T) {
	b := NewBroker(nil, 8)
	defer b.Close()
	b.Subscribe("json", nil)
	b.Subscribe("json", []int{2})

	tr := obs.NewTracer("stream.fanout")
	b.Publish(7, []*Frame{frame(1, 1, "x"), frame(2, 1, "y")}, tr.Root())
	tr.Finish()
	exp := tr.Export()

	var clientSpans int
	exp.Walk(func(s *obs.SpanExport) {
		if s.Name == "fanout.client" {
			clientSpans++
			if s.Tags["enqueued"] == "" || s.Tags["format"] != "json" {
				t.Fatalf("fanout.client span missing tags: %+v", s.Tags)
			}
		}
	})
	if clientSpans != 2 {
		t.Fatalf("fanout.client spans = %d, want 2 (one per client)", clientSpans)
	}
}

func TestHealthSnapshot(t *testing.T) {
	b := NewBroker(nil, 8)
	defer b.Close()
	c1 := b.Subscribe("json", nil)
	c2 := b.Subscribe("text", []int{1, 3})
	_ = c1
	b.Publish(1, []*Frame{frame(1, 1, "x")}, nil)
	drain(t, c1, 1)

	h := b.Health()
	if len(h.Clients) != 2 {
		t.Fatalf("health clients = %d, want 2", len(h.Clients))
	}
	if h.Clients[0].ID != c1.ID || h.Clients[1].ID != c2.ID {
		t.Fatalf("health order %d,%d want %d,%d", h.Clients[0].ID, h.Clients[1].ID, c1.ID, c2.ID)
	}
	if h.Clients[0].FramesSent != 1 || h.Clients[0].QueueDepth != 0 {
		t.Fatalf("c1 health %+v, want 1 sent / 0 depth", h.Clients[0])
	}
	if got := h.Clients[1].Subs; len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("c2 subs %v, want [1 3]", got)
	}
	if h.QueueCap != 8 {
		t.Fatalf("queue cap %d, want 8", h.QueueCap)
	}
}

func TestFormatsInUse(t *testing.T) {
	b := NewBroker(nil, 0)
	defer b.Close()
	b.Subscribe("json", nil)
	b.Subscribe("json", nil)
	b.Subscribe("dot", nil)
	got := b.FormatsInUse()
	if got["json"] != 2 || got["dot"] != 1 || len(got) != 2 {
		t.Fatalf("formats in use = %v", got)
	}
}

// TestCoalescedDeliveryDoesNotMutateSharedFrame pins the invariant the
// race detector caught in the bench harness: a published Frame is shared by
// every subscribed client, so marking a coalesced delivery must happen on a
// per-client copy — one slow client's coalescing must never leak a
// Coalesced flag (or a data race) into another client's delivery of the
// same frame.
func TestCoalescedDeliveryDoesNotMutateSharedFrame(t *testing.T) {
	b := NewBroker(nil, 1)
	defer b.Close()
	slow := b.Subscribe("json", nil)
	fast := b.Subscribe("json", nil)

	f1 := frame(1, 1, "a")
	f2 := frame(1, 2, "b")
	f3 := frame(1, 3, "c")
	b.Publish(1, []*Frame{f1}, nil)
	// fast drains immediately; slow sits, so f2 lands in its coalescing
	// slot and f3 supersedes it there.
	drain(t, fast, 1)
	b.Publish(2, []*Frame{f2}, nil)
	b.Publish(3, []*Frame{f3}, nil)
	drain(t, fast, 2)

	got := drain(t, slow, 2)
	last := got[len(got)-1]
	if last.Version != 3 || !last.Coalesced {
		t.Fatalf("slow client's last delivery = v%d coalesced=%v, want v3 coalesced", last.Version, last.Coalesced)
	}
	// The shared frame object itself must be untouched.
	if f3.Coalesced {
		t.Fatal("published Frame mutated by a client's coalesced delivery")
	}
}
