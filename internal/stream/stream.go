// Package stream is the push plane of the visualizer: a fan-out broker
// that delivers pane-level delta frames to any number of subscribed
// clients the moment a stop event lands, replacing poll+304 with push
// (ROADMAP item 2). The broker never blocks a publisher and never grows
// without bound:
//
//   - Fast clients get every frame, in publish order, through a bounded
//     FIFO queue.
//   - A client whose queue fills degrades to latest-wins: further frames
//     land in a per-pane coalescing slot, so the client converges on each
//     pane's newest content while the superseded frames are counted as
//     dropped. Once both queue and slots drain, the client is fast again.
//   - Memory per client is bounded by the queue capacity plus one slot per
//     subscribed pane; the broker spawns no goroutines of its own, so a
//     departed client leaves nothing behind.
//
// Every hop is observed: per-client send-lag and queue-depth gauges (slot-
// keyed so connection churn cannot grow the registry), sent / dropped /
// coalesced frame counters, and a Health snapshot the /debug/stream
// surface and the vchat stream diagnosis answer from. The bytes inside a
// Frame come from the server's per-pane serialization cache — the broker
// only moves pointers, so N clients cost one encode.
package stream

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"visualinux/internal/obs"
)

// DefaultQueueCap is the per-client FIFO bound. Small on purpose: a
// client that cannot drain a handful of frames is a slow consumer and
// should degrade to latest-wins snapshots rather than buffer history.
const DefaultQueueCap = 16

// FanoutTracePane is the reserved pane ID fan-out round span trees are
// retained under in the TraceStore. Real panes are numbered from 1, so
// the stream's per-round traces can share the store the vchat diagnosis
// layer already reads without colliding with any extraction trace.
const FanoutTracePane = -1

// Frame is one pane delta: the serialized pane body at a specific
// version/epoch, stamped with the broadcast sequence and publish time so
// receivers can measure push lag and assert ordering.
type Frame struct {
	Seq     uint64 `json:"seq"`
	Round   uint64 `json:"round"` // stop-event round that produced the frame
	Pane    int    `json:"pane"`
	Version int    `json:"version"`
	Epoch   int    `json:"epoch"`
	ETag    string `json:"etag"`
	Format  string `json:"format"`
	// Snapshot marks an on-subscribe catch-up frame (current pane state)
	// rather than a stop-event delta.
	Snapshot bool `json:"snapshot,omitempty"`
	// Coalesced is set on delivery when this frame stood in for one or
	// more older frames the client was too slow to receive.
	Coalesced bool `json:"coalesced,omitempty"`
	// Body is the serialized pane — byte-identical to what GET
	// /api/pane?id=N&format=F returns at the same version/epoch.
	Body []byte `json:"-"`

	published time.Time
}

// Published reports when the frame was handed to the broker.
func (f *Frame) Published() time.Time { return f.published }

// Broker fans frames out to subscribed clients. All methods are safe for
// concurrent use; Publish never blocks on a slow client.
type Broker struct {
	o *obs.Observer

	mu       sync.Mutex
	clients  map[int]*Client
	nextID   int
	seq      uint64
	queueCap int
	slots    []bool // slot occupancy; index keys per-client gauges
	closed   bool
}

// NewBroker creates a broker reporting into o (nil disables metrics).
// queueCap bounds each client's FIFO (<=0 uses DefaultQueueCap).
func NewBroker(o *obs.Observer, queueCap int) *Broker {
	if queueCap <= 0 {
		queueCap = DefaultQueueCap
	}
	return &Broker{o: o, clients: make(map[int]*Client), queueCap: queueCap}
}

// Client is one stream subscriber. The serving goroutine (the SSE handler
// or a bench consumer) pulls frames with Next; the broker pushes into the
// client's bounded buffer from Publish.
type Client struct {
	ID     int
	Slot   int              // gauge-key slot, recycled after disconnect
	Format string           // pane serialization format this client receives
	Subs   map[int]struct{} // subscribed pane IDs; nil = all panes

	b      *Broker
	notify chan struct{} // cap-1 doorbell
	done   chan struct{}

	mu           sync.Mutex
	queue        []*Frame       // FIFO while the client keeps up
	pending      map[int]*Frame // latest-wins per pane once the FIFO filled
	pendingSup   map[int]uint64 // frames superseded per pending pane
	closed       bool
	sent         uint64
	dropped      uint64
	coalesced    uint64
	lastSeq      uint64 // newest seq enqueued for this client
	deliveredSeq uint64 // newest seq handed to the writer
	lastLagMS    float64
	connected    time.Time

	lagGauge   *obs.Gauge
	depthGauge *obs.Gauge
	lagName    string
	depthName  string
}

// QueueCap reports the broker's per-client FIFO bound.
func (b *Broker) QueueCap() int { return b.queueCap }

// Subscribe registers a client receiving the given serialization format.
// panes narrows the subscription (empty = every pane). The caller owns the
// client's consumption loop and must Unsubscribe when done.
func (b *Broker) Subscribe(format string, panes []int) *Client {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	c := &Client{
		ID:        b.nextID,
		Format:    format,
		b:         b,
		notify:    make(chan struct{}, 1),
		done:      make(chan struct{}),
		connected: time.Now(),
	}
	if len(panes) > 0 {
		c.Subs = make(map[int]struct{}, len(panes))
		for _, id := range panes {
			c.Subs[id] = struct{}{}
		}
	}
	c.Slot = b.takeSlotLocked()
	if b.o != nil {
		c.lagName = fmt.Sprintf(`vl_stream_client_lag_ms{client="s%d"}`, c.Slot)
		c.depthName = fmt.Sprintf(`vl_stream_client_queue_depth{client="s%d"}`, c.Slot)
		c.lagGauge = b.o.Registry.Gauge(c.lagName, "per-client stop-to-wire lag of the most recent delivered frame")
		c.depthGauge = b.o.Registry.Gauge(c.depthName, "per-client count of enqueued but undelivered frames")
	}
	b.clients[c.ID] = c
	if b.o != nil {
		b.o.StreamConnects.Inc()
		b.o.StreamClients.Set(float64(len(b.clients)))
	}
	if b.closed {
		c.close()
	}
	return c
}

// takeSlotLocked hands out the smallest free slot index, so the set of
// per-client gauge series is bounded by the maximum concurrent client
// count, not by how many clients ever connected.
func (b *Broker) takeSlotLocked() int {
	for i, used := range b.slots {
		if !used {
			b.slots[i] = true
			return i
		}
	}
	b.slots = append(b.slots, true)
	return len(b.slots) - 1
}

// Unsubscribe removes a client: its buffers are released, its slot (and
// gauge series) recycled, and any blocked Next call returns. Idempotent.
func (b *Broker) Unsubscribe(c *Client) {
	if c == nil {
		return
	}
	b.mu.Lock()
	if _, ok := b.clients[c.ID]; !ok {
		b.mu.Unlock()
		return
	}
	delete(b.clients, c.ID)
	b.slots[c.Slot] = false
	if b.o != nil {
		b.o.StreamDisconnects.Inc()
		b.o.StreamClients.Set(float64(len(b.clients)))
		b.o.Registry.DropGauge(c.lagName)
		b.o.Registry.DropGauge(c.depthName)
	}
	b.mu.Unlock()
	c.close()
}

// Close shuts the broker down: every client is unsubscribed and further
// Publish calls are no-ops. Subscribes after Close return already-closed
// clients whose Next immediately reports no more frames.
func (b *Broker) Close() {
	b.mu.Lock()
	b.closed = true
	clients := make([]*Client, 0, len(b.clients))
	for _, c := range b.clients {
		clients = append(clients, c)
	}
	b.mu.Unlock()
	for _, c := range clients {
		b.Unsubscribe(c)
	}
}

// ClientCount reports how many clients are connected.
func (b *Broker) ClientCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.clients)
}

// Seq reports the newest broadcast sequence number assigned.
func (b *Broker) Seq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// FormatsInUse reports how many clients want each serialization format —
// the publisher encodes each changed pane once per format that has at
// least one subscriber, and not at all otherwise.
func (b *Broker) FormatsInUse() map[string]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int)
	for _, c := range b.clients {
		out[c.Format]++
	}
	return out
}

// Publish fans one stop-event round's frames out to every subscribed
// client, assigning broadcast sequence numbers in order. It never blocks:
// a client that cannot keep up degrades to latest-wins coalescing. When
// tr is non-nil, one child span per client records what the fan-out did
// for it. Frames must not be mutated after publishing.
func (b *Broker) Publish(round uint64, frames []*Frame, tr *obs.Span) {
	if len(frames) == 0 {
		return
	}
	now := time.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	for _, f := range frames {
		b.seq++
		f.Seq = b.seq
		f.Round = round
		f.published = now
	}
	for _, c := range b.clients {
		enq, dropped := 0, uint64(0)
		for _, f := range frames {
			if !c.wants(f) {
				continue
			}
			dropped += c.enqueue(f)
			enq++
		}
		if sp := tr.StartChild("fanout.client"); sp != nil {
			sp.TagUint("client", uint64(c.ID)).
				Tag("format", c.Format).
				TagUint("enqueued", uint64(enq)).
				TagUint("superseded", dropped).
				TagUint("queue_depth", uint64(c.depth()))
			sp.End()
		}
	}
}

// SnapshotTo enqueues catch-up frames directly to one client (the
// on-subscribe "current state" push), stamping them with sequence numbers
// so ordering assertions hold across the snapshot/delta boundary.
func (b *Broker) SnapshotTo(c *Client, frames []*Frame) {
	now := time.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	for _, f := range frames {
		if !c.wants(f) {
			continue
		}
		b.seq++
		f.Seq = b.seq
		f.Snapshot = true
		f.published = now
		c.enqueue(f)
	}
}

// wants reports whether the client subscribes to the frame's pane+format.
func (c *Client) wants(f *Frame) bool {
	if f.Format != c.Format {
		return false
	}
	if c.Subs == nil {
		return true
	}
	_, ok := c.Subs[f.Pane]
	return ok
}

// enqueue adds one frame to the client's buffer, returning how many older
// frames it superseded. Fast path: FIFO append while the queue has room
// and no coalescing backlog exists (ordering would break if fresh frames
// jumped ahead of pending ones). Slow path: latest-wins per pane.
func (c *Client) enqueue(f *Frame) (superseded uint64) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0
	}
	c.lastSeq = f.Seq
	if len(c.pending) == 0 && len(c.queue) < c.b.queueCap {
		c.queue = append(c.queue, f)
	} else {
		if c.pending == nil {
			c.pending = make(map[int]*Frame)
			c.pendingSup = make(map[int]uint64)
		}
		if _, had := c.pending[f.Pane]; had {
			superseded = 1
			c.dropped++
			c.pendingSup[f.Pane]++
			if o := c.b.o; o != nil {
				o.StreamFramesDropped.Inc()
			}
		}
		c.pending[f.Pane] = f
	}
	c.depthGauge.Set(float64(len(c.queue) + len(c.pending)))
	c.mu.Unlock()
	select {
	case c.notify <- struct{}{}:
	default:
	}
	return superseded
}

// depth reports enqueued-but-undelivered frames.
func (c *Client) depth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue) + len(c.pending)
}

// take pops the next deliverable frame: FIFO first, then the coalescing
// slots in pane order. Returns nil when the client is drained.
func (c *Client) take() *Frame {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) > 0 {
		f := c.queue[0]
		copy(c.queue, c.queue[1:])
		c.queue[len(c.queue)-1] = nil
		c.queue = c.queue[:len(c.queue)-1]
		return f
	}
	if len(c.pending) > 0 {
		ids := make([]int, 0, len(c.pending))
		for id := range c.pending {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		id := ids[0]
		f := c.pending[id]
		if c.pendingSup[id] > 0 {
			// The Frame is shared by every subscribed client; mark the
			// coalesced delivery on a per-client copy (Body is read-only and
			// safely aliased).
			cp := *f
			cp.Coalesced = true
			f = &cp
			c.coalesced++
			if o := c.b.o; o != nil {
				o.StreamFramesCoalesced.Inc()
			}
		}
		delete(c.pending, id)
		delete(c.pendingSup, id)
		return f
	}
	return nil
}

// Next blocks until a frame is deliverable, the context ends, or the
// client is unsubscribed. ok=false means the stream is over for this
// client. Delivery accounting (sent counter, send-lag and queue-depth
// gauges) happens here, at the moment the frame is handed to the writer.
func (c *Client) Next(ctx context.Context) (*Frame, bool) {
	for {
		if f := c.take(); f != nil {
			lag := time.Since(f.published)
			c.mu.Lock()
			c.sent++
			c.deliveredSeq = f.Seq
			c.lastLagMS = float64(lag.Nanoseconds()) / 1e6
			depth := len(c.queue) + len(c.pending)
			c.mu.Unlock()
			c.lagGauge.Set(float64(lag.Nanoseconds()) / 1e6)
			c.depthGauge.Set(float64(depth))
			if o := c.b.o; o != nil {
				o.StreamFramesSent.Inc()
				o.ObservePushLag(lag)
			}
			return f, true
		}
		select {
		case <-ctx.Done():
			return nil, false
		case <-c.done:
			// Drain what was enqueued before the close so a clean
			// Close/Unsubscribe doesn't eat delivered history; the next
			// iteration returns nil, false once empty.
			if f := c.take(); f != nil {
				c.mu.Lock()
				c.sent++
				c.deliveredSeq = f.Seq
				c.mu.Unlock()
				if o := c.b.o; o != nil {
					o.StreamFramesSent.Inc()
				}
				return f, true
			}
			return nil, false
		case <-c.notify:
		}
	}
}

func (c *Client) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
}

// --- health -------------------------------------------------------------------

// ClientHealth is one client's row in the /debug/stream surface.
type ClientHealth struct {
	ID              int     `json:"id"`
	Slot            int     `json:"slot"`
	Format          string  `json:"format"`
	Subs            []int   `json:"subs,omitempty"` // nil = all panes
	ConnectedUnix   int64   `json:"connected_unix_ms"`
	FramesSent      uint64  `json:"frames_sent"`
	FramesDropped   uint64  `json:"frames_dropped"`
	FramesCoalesced uint64  `json:"frames_coalesced"`
	QueueDepth      int     `json:"queue_depth"`
	LastSeq         uint64  `json:"last_seq"`
	DeliveredSeq    uint64  `json:"delivered_seq"`
	LagFrames       uint64  `json:"lag_frames"` // enqueued-but-undelivered distance
	LastLagMS       float64 `json:"last_lag_ms"`
}

// Health is the broker-wide snapshot behind /debug/stream and the vchat
// stream diagnosis.
type Health struct {
	Clients  []ClientHealth `json:"clients"`
	Seq      uint64         `json:"seq"`
	QueueCap int            `json:"queue_cap"`
}

// Health snapshots every connected client, ordered by ID.
func (b *Broker) Health() *Health {
	b.mu.Lock()
	clients := make([]*Client, 0, len(b.clients))
	for _, c := range b.clients {
		clients = append(clients, c)
	}
	h := &Health{Seq: b.seq, QueueCap: b.queueCap}
	b.mu.Unlock()
	sort.Slice(clients, func(i, j int) bool { return clients[i].ID < clients[j].ID })
	for _, c := range clients {
		c.mu.Lock()
		ch := ClientHealth{
			ID: c.ID, Slot: c.Slot, Format: c.Format,
			ConnectedUnix:   c.connected.UnixMilli(),
			FramesSent:      c.sent,
			FramesDropped:   c.dropped,
			FramesCoalesced: c.coalesced,
			QueueDepth:      len(c.queue) + len(c.pending),
			LastSeq:         c.lastSeq,
			DeliveredSeq:    c.deliveredSeq,
			LastLagMS:       c.lastLagMS,
		}
		if c.lastSeq > c.deliveredSeq {
			ch.LagFrames = c.lastSeq - c.deliveredSeq
		}
		if c.Subs != nil {
			ch.Subs = make([]int, 0, len(c.Subs))
			for id := range c.Subs {
				ch.Subs = append(ch.Subs, id)
			}
			sort.Ints(ch.Subs)
		}
		c.mu.Unlock()
		h.Clients = append(h.Clients, ch)
	}
	return h
}
