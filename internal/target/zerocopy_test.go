package target

import (
	"bytes"
	"testing"

	"visualinux/internal/ctypes"
	"visualinux/internal/mem"
)

// cowFixture builds a sealed template memory, forks it, and wraps the fork
// in a Sim — the fleet-session shape of a target chain.
func cowFixture(t *testing.T, pages int) (tpl, fork *mem.Memory, sim *Sim, base uint64) {
	t.Helper()
	store := mem.NewPageStore()
	tpl = mem.New()
	base = uint64(0x4000_0000)
	data := make([]byte, pages*PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	tpl.Write(base, data)
	tpl.Seal(store)
	fork = tpl.Fork()
	return tpl, fork, NewSim(fork, ctypes.NewRegistry()), base
}

// Snapshot fills over a CoW-backed sim must alias store pages (no copy, no
// link read) and serve the same bytes as a direct read.
func TestSnapshotZeroCopyFill(t *testing.T) {
	_, fork, sim, base := cowFixture(t, 4)
	s := NewSnapshot(sim)

	got := readPage(t, s, base+PageSize)
	want := make([]byte, PageSize)
	if err := fork.Read(base+PageSize, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("zero-copy fill served wrong bytes")
	}
	if s.ZeroCopyFills() == 0 {
		t.Fatal("fill over a shared page did not take the zero-copy path")
	}
	if reads := sim.Stats().Reads.Load(); reads != 0 {
		t.Fatalf("zero-copy fill issued %d link reads, want 0", reads)
	}
	// The cached page and the store page must be the same backing array.
	s.mu.RLock()
	p := s.pages[(base+PageSize)&^(PageSize-1)]
	s.mu.RUnlock()
	storeData, ok := fork.PageData(base + PageSize)
	if !ok || &p.data[0] != &storeData[0] {
		t.Fatal("cached page does not alias the store page")
	}
}

// A CoW break in the session's memory must flow through revalidation into
// the cache: the aliased page is privatized (never written through), content
// updates, and the figure-level change tracking fires.
func TestAliasedPageRevalidatesAfterCowBreak(t *testing.T) {
	tpl, fork, sim, base := cowFixture(t, 4)
	s := NewSnapshot(sim)

	gen0 := s.Generation()
	before := readPage(t, s, base)
	readPage(t, s, base+2*PageSize) // cache the neighbour at gen0 too

	fork.WriteU64(base+16, 0xfeedface)
	s.Advance()
	if clean := s.RangesUnchangedSince([]Range{{Addr: base, Size: 8 * 8}}, gen0); clean {
		t.Fatal("RangesUnchangedSince missed a CoW-broken page")
	}
	after := readPage(t, s, base)
	if bytes.Equal(before, after) {
		t.Fatal("snapshot kept serving stale aliased content")
	}
	// The template (and the store page behind it) must be untouched.
	tplPage := make([]byte, PageSize)
	if err := tpl.Read(base, tplPage); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tplPage, before) {
		t.Fatal("CoW break leaked into the shared store page")
	}
	// An untouched neighbour stays aliased and clean.
	if clean := s.RangesUnchangedSince([]Range{{Addr: base + 2*PageSize, Size: 64}}, gen0); !clean {
		t.Fatal("untouched page reported changed")
	}
}

// A journaled write of identical bytes must not privatize the cached alias:
// the diff in the sub-page refetch finds equal content... except the write
// itself already broke CoW in the *memory*, so the page is no longer shared
// there — the cache alias simply survives with `changed` unmoved.
func TestIdenticalWriteKeepsChangeTrackingQuiet(t *testing.T) {
	_, fork, sim, base := cowFixture(t, 2)
	s := NewSnapshot(sim)
	gen0 := s.Generation()
	readPage(t, s, base)

	var cur [8]byte
	if err := fork.Read(base+32, cur[:]); err != nil {
		t.Fatal(err)
	}
	fork.Write(base+32, cur[:]) // same bytes: journal fires, content doesn't move
	s.Advance()
	if clean := s.RangesUnchangedSince([]Range{{Addr: base, Size: 64}}, gen0); !clean {
		t.Fatal("identical write dirtied the figure-level delta check")
	}
}

// Mixed runs — some pages shared, some privatized — must fill the shared
// pages zero-copy and read only the private gaps.
func TestMixedRunFillsGapsOnly(t *testing.T) {
	_, fork, sim, base := cowFixture(t, 6)
	// Privatize pages 1 and 4 before anything is cached.
	fork.WriteU8(base+1*PageSize+5, 0xaa)
	fork.WriteU8(base+4*PageSize+5, 0xbb)

	s := NewSnapshot(sim)
	s.Prefetch(base, 6*PageSize)
	if zc := s.ZeroCopyFills(); zc != 4 {
		t.Fatalf("zero-copy fills = %d, want 4", zc)
	}
	if reads := sim.Stats().BytesRead.Load(); reads != 2*PageSize {
		t.Fatalf("link bytes = %d, want exactly the two private pages (%d)", reads, 2*PageSize)
	}
	for i := 0; i < 6; i++ {
		want := make([]byte, PageSize)
		if err := fork.Read(base+uint64(i)*PageSize, want); err != nil {
			t.Fatal(err)
		}
		if got := readPage(t, s, base+uint64(i)*PageSize); !bytes.Equal(got, want) {
			t.Fatalf("page %d content mismatch", i)
		}
	}
}

// The steady revalidation round must not allocate per call: scratch buffers
// are pooled, journal promotion is in-place, and cache hits copy into the
// caller's buffer. This is the allocs-per-op contract behind the BENCH_6
// steady-state gate, asserted here at the snapshot layer where the scratch
// lives.
func TestSteadyRevalidationAllocs(t *testing.T) {
	m, sim, base := genFixture(t)
	s := NewSnapshot(sim)
	buf := make([]byte, 256)

	round := func() {
		m.WriteU64(base+128, 0x1234)   // journaled mutation
		m.WriteU64(base+PageSize+8, 7) // second page too
		s.Advance()
		if err := s.ReadMemory(base, buf); err != nil {
			t.Fatal(err)
		}
		if err := s.ReadMemory(base+PageSize, buf); err != nil {
			t.Fatal(err)
		}
	}
	round() // warm: cold fills, pool population, journal ring growth
	round()

	allocs := testing.AllocsPerRun(50, round)
	// The round still allocates O(1) bookkeeping (journal range copies,
	// merge scratch) — the page-sized buffers are what must not appear.
	// 12 is far below one 4 KiB buffer per round; pre-pooling this sat
	// around the number of refetched runs plus pages.
	if allocs > 12 {
		t.Fatalf("steady revalidation round allocates %.0f objects/op, want <= 12", allocs)
	}
}
