package target

import (
	"sync"

	"visualinux/internal/ctypes"
	"visualinux/internal/mem"
)

// Sim is the in-process simulated debug target: a sparse memory image plus
// a symbol table and type registry — the "GDB (QEMU)" personality. Reads
// are plain memory copies; the only accounting is the atomic Stats.
//
// A Sim is safe for concurrent readers. Symbol registration normally
// happens only while the kernel image is being built, but it is guarded
// anyway so live-mutation tests can extend the table under extraction.
type Sim struct {
	Mem *mem.Memory
	reg *ctypes.Registry

	mu      sync.RWMutex
	symbols map[string]Symbol
	byAddr  map[uint64]string
	order   []string // registration order, for deterministic Symbols()

	stats Stats
}

// NewSim wraps a memory image and type registry as a target.
func NewSim(m *mem.Memory, reg *ctypes.Registry) *Sim {
	return &Sim{
		Mem:     m,
		reg:     reg,
		symbols: make(map[string]Symbol),
		byAddr:  make(map[uint64]string),
	}
}

// AddSymbol registers (or replaces) a global symbol.
func (s *Sim) AddSymbol(name string, addr uint64, typ *ctypes.Type) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.symbols[name]; !exists {
		s.order = append(s.order, name)
	}
	s.symbols[name] = Symbol{Name: name, Addr: addr, Type: typ}
	s.byAddr[addr] = name
}

// Symbols returns every registered symbol in registration order.
func (s *Sim) Symbols() []Symbol {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Symbol, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, s.symbols[name])
	}
	return out
}

// CloneWith returns a Sim over m with a private copy of the symbol table and
// fresh stats, sharing the immutable type registry. The fleet fork path uses
// it: mutation workloads register new symbols (k.Func) per session, so forks
// must not share one table.
func (s *Sim) CloneWith(m *mem.Memory) *Sim {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := &Sim{
		Mem:     m,
		reg:     s.reg,
		symbols: make(map[string]Symbol, len(s.symbols)),
		byAddr:  make(map[uint64]string, len(s.byAddr)),
		order:   append([]string(nil), s.order...),
	}
	for name, sym := range s.symbols {
		c.symbols[name] = sym
	}
	for addr, name := range s.byAddr {
		c.byAddr[addr] = name
	}
	return c
}

// PageData implements PageProvider when the backing memory still shares
// addr's page with its CoW store. No Stats accounting: handing out an alias
// is metadata, not a read — nothing crosses even a modeled link.
func (s *Sim) PageData(addr uint64) ([]byte, bool) {
	return s.Mem.PageData(addr)
}

// ReadMemory implements Target.
func (s *Sim) ReadMemory(addr uint64, buf []byte) error {
	s.stats.CountRead(len(buf))
	return s.Mem.Read(addr, buf)
}

// LookupSymbol implements Target.
func (s *Sim) LookupSymbol(name string) (Symbol, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sym, ok := s.symbols[name]
	return sym, ok
}

// SymbolAt implements Target.
func (s *Sim) SymbolAt(addr uint64) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.byAddr[addr]
	return n, ok
}

// Types implements Target.
func (s *Sim) Types() *ctypes.Registry { return s.reg }

// Stats implements Target.
func (s *Sim) Stats() *Stats { return &s.stats }

// ClipMapped implements RangeProber at the backing memory's page
// granularity: the simulated machine's memory map is local metadata, so
// probing costs no link traffic — the same way QEMU's gdbstub serves its
// memory map from the machine model, not from guest reads.
func (s *Sim) ClipMapped(addr, size uint64) ([]Range, bool) {
	if size == 0 {
		return nil, true
	}
	if addr+size < addr {
		size = -addr // clamp a wrapping range at the top of the address space
	}
	// Walk by remaining bytes, not by an exclusive end address: a clamped
	// range reaching the very top of the address space has end == 0, which
	// would wrap every comparison.
	var out []Range
	cur := addr
	for size > 0 {
		step := mem.PageSize - cur%mem.PageSize
		if step > size {
			step = size
		}
		if s.Mem.Mapped(cur) {
			if n := len(out); n > 0 && out[n-1].End() == cur {
				out[n-1].Size += step
			} else {
				out = append(out, Range{Addr: cur, Size: step})
			}
		}
		cur += step // wraps to 0 only on the final iteration
		size -= step
	}
	return out, true
}

// HashBlocks implements PageHasher: SubPage-granular FNV-1a hashes computed
// locally against the backing memory — the machine-side half of stale-page
// revalidation, free of link traffic and Stats accounting (a real stub
// hashes its own memory; the debugger only pays for the exchange, which the
// Latency layer prices). Unmapped blocks hash to 0 so a block that becomes
// unmapped never compares equal to cached content.
func (s *Sim) HashBlocks(addr, size uint64) ([]uint64, bool) {
	if addr%SubPage != 0 || size%SubPage != 0 {
		return nil, false
	}
	hashes := make([]uint64, 0, size/SubPage)
	buf := make([]byte, SubPage)
	for off := uint64(0); off < size; off += SubPage {
		if err := s.Mem.Read(addr+off, buf); err != nil {
			hashes = append(hashes, 0)
			continue
		}
		hashes = append(hashes, HashBlock(buf))
	}
	return hashes, true
}

// DirtySince implements DirtyTracker over the backing memory's write
// journal: the ranges kernelsim mutated since mark, sorted and merged.
func (s *Sim) DirtySince(mark uint64) ([]Range, uint64, bool) {
	writes, next, ok := s.Mem.WritesSince(mark)
	if !ok {
		return nil, next, false
	}
	return MergeRanges(rangesOf(writes)), next, true
}

func rangesOf(writes []mem.WriteRange) []Range {
	out := make([]Range, 0, len(writes))
	for _, w := range writes {
		if w.Size == 0 {
			continue
		}
		out = append(out, Range{Addr: w.Addr, Size: w.Size})
	}
	return out
}

// MappedRanges returns the merged mapped ranges of the whole image, sorted
// ascending — what the gdbrsp server serves as its memory-map annex.
func (s *Sim) MappedRanges() []Range {
	bases := s.Mem.MappedRanges()
	var out []Range
	for _, base := range bases {
		if n := len(out); n > 0 && out[n-1].End() == base {
			out[n-1].Size += mem.PageSize
		} else {
			out = append(out, Range{Addr: base, Size: mem.PageSize})
		}
	}
	return out
}

var (
	_ Target       = (*Sim)(nil)
	_ RangeProber  = (*Sim)(nil)
	_ PageProvider = (*Sim)(nil)
)
