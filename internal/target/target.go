// Package target defines the debug-target abstraction every layer above the
// simulated kernel speaks: typed memory reads, a symbol table, and access to
// the C type registry — exactly the interface GDB exposes to its front-ends.
//
// The package is built as the system's performance layer, not just its
// plumbing. The paper's §5.4 measurement (KGDB at ~5 ms per read
// transaction) shows extraction cost is dominated by per-read round trips,
// so everything here is shaped around issuing fewer, larger transactions:
//
//   - Stats counts reads, bytes, and link-level transactions with atomics,
//     so any number of extraction goroutines can share one target;
//   - Latency (WithLatency) models the KGDB serial link on a virtual clock,
//     charging per transaction and per byte;
//   - Snapshot is a page-granular read-through cache valid for the lifetime
//     of a stop event — cache hits never reach the modeled link;
//   - Prefetch/ReadStruct coalesce a whole object into one transaction,
//     which the snapshot cache then serves field by field for free.
package target

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"visualinux/internal/ctypes"
)

// Symbol is one entry of the debug symbol table: a named, typed address
// (what GDB gets from vmlinux's symtab + DWARF).
type Symbol struct {
	Name string
	Addr uint64
	Type *ctypes.Type // nil for stripped/untyped symbols
}

// Stats counts a target's read traffic. All counters are atomic: targets
// are shared by concurrent extraction workers, and the Table 4 harness
// snapshots them around every plot.
type Stats struct {
	Reads        atomic.Uint64 // ReadMemory calls (logical read requests)
	BytesRead    atomic.Uint64 // total bytes transferred
	Transactions atomic.Uint64 // link-level round trips (>= Reads when reads split)
	// Continuations counts follow-up packets of an already-open transfer
	// (qXfer chunk replies): round trips that stream a reply the stub has
	// already prepared, so they never re-pay the per-transaction memory-walk
	// cost the paper measures at ~5 ms.
	Continuations atomic.Uint64
	// HashChecks counts stub-side metadata round trips (block-hash or
	// dirty-range queries) issued to revalidate stale snapshot pages instead
	// of refetching them.
	HashChecks atomic.Uint64
}

// CountRead records one logical read of n bytes carried by one transaction.
func (s *Stats) CountRead(n int) {
	s.Reads.Add(1)
	s.BytesRead.Add(uint64(n))
	s.Transactions.Add(1)
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.Reads.Store(0)
	s.BytesRead.Store(0)
	s.Transactions.Store(0)
	s.Continuations.Store(0)
	s.HashChecks.Store(0)
}

// Snapshot returns the current (reads, bytes) totals.
func (s *Stats) Snapshot() (reads, bytes uint64) {
	return s.Reads.Load(), s.BytesRead.Load()
}

// Totals returns all three counters at once.
func (s *Stats) Totals() (reads, bytes, transactions uint64) {
	return s.Reads.Load(), s.BytesRead.Load(), s.Transactions.Load()
}

// Target is a stopped debuggee: readable memory, symbols, and types.
// Implementations must be safe for concurrent readers.
type Target interface {
	// ReadMemory fills buf from target memory at addr, failing if any byte
	// of the range is unreadable.
	ReadMemory(addr uint64, buf []byte) error
	// LookupSymbol finds a symbol by name.
	LookupSymbol(name string) (Symbol, bool)
	// SymbolAt reverse-maps an address to a symbol name (exact match).
	SymbolAt(addr uint64) (string, bool)
	// Types is the DWARF stand-in: the registry of C type layouts.
	Types() *ctypes.Registry
	// Stats exposes the target's read counters.
	Stats() *Stats
}

// Prefetcher is implemented by targets that can pull a memory range close
// (into a cache) ahead of fine-grained reads. Prefetch is advisory: errors
// are swallowed and the range may be partially unavailable.
type Prefetcher interface {
	Prefetch(addr, size uint64)
}

// Range describes one contiguous span of target memory.
type Range struct {
	Addr uint64
	Size uint64
}

// End returns the first address past the range.
func (r Range) End() uint64 { return r.Addr + r.Size }

// MergeRanges sorts ranges by address and merges overlapping or adjacent
// ones, dropping empties. Wrapping ranges are clamped at the top of the
// address space. The input slice may be reordered.
func MergeRanges(ranges []Range) []Range {
	rs := ranges[:0]
	for _, r := range ranges {
		if r.Size == 0 {
			continue
		}
		if r.Addr+r.Size < r.Addr {
			r.Size = -r.Addr
		}
		rs = append(rs, r)
	}
	if len(rs) == 0 {
		return nil
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Addr < rs[j].Addr })
	out := rs[:1]
	for _, r := range rs[1:] {
		cur := &out[len(out)-1]
		// Inclusive last addresses avoid end-address wraparound at the top
		// of the address space (clamping guarantees Addr+Size-1 >= Addr).
		curLast := cur.Addr + cur.Size - 1
		rLast := r.Addr + r.Size - 1
		if r.Addr == 0 || r.Addr-1 <= curLast { // overlapping or adjacent
			if rLast > curLast {
				cur.Size = rLast - cur.Addr + 1
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}

// RangeProber is implemented by targets that know the target's memory map.
// ClipMapped intersects [addr, addr+size) with the mapped ranges, returning
// the readable subranges in ascending order. ok is false when the target
// cannot tell (an RSP stub without a memory-map annex); callers must then
// treat the whole range as potentially mapped. Probing is metadata, like
// symbol lookup: it never costs link transactions once the map is loaded.
type RangeProber interface {
	ClipMapped(addr, size uint64) (ranges []Range, ok bool)
}

// ClipMapped probes t's memory map when it has one. See RangeProber.
func ClipMapped(t Target, addr, size uint64) ([]Range, bool) {
	if p, ok := t.(RangeProber); ok {
		return p.ClipMapped(addr, size)
	}
	return nil, false
}

// PageProvider is implemented by targets whose backing pages live in this
// process and are guaranteed immutable while shared — the simulated machine's
// CoW page store. PageData returns the stable backing slice of addr's page;
// ok=false means the page is mutable, unmapped, or not local, and the caller
// must read a copy through ReadMemory instead.
//
// This is a zero-copy capability, not a read: callers may alias the returned
// slice indefinitely and must never write through it. Link-modeling wrappers
// (Latency, the RSP client) deliberately do NOT forward it — a modeled serial
// link has no same-process pages to share, and forwarding would let cache
// fills skip the per-byte cost the paper measures.
type PageProvider interface {
	PageData(addr uint64) (data []byte, ok bool)
}

// BatchPrefetcher is implemented by caching targets that can fill many
// ranges at once, merging adjacent ranges into coalesced link transactions
// and clipping them to the mapped memory map.
type BatchPrefetcher interface {
	PrefetchRanges(ranges []Range)
}

// PrefetchBatch hints that every given range is about to be read field by
// field — the cross-element companion of Prefetch: a container walk collects
// all yielded element extents and hands them over in one pass, so adjacent
// elements (array slots, contiguous slab objects) merge into single fills.
// Advisory like Prefetch: errors are swallowed, unmapped stretches are
// skipped, raw targets ignore it.
func PrefetchBatch(t Target, ranges []Range) {
	rs := make([]Range, 0, len(ranges))
	for _, r := range ranges {
		if r.Addr == 0 || r.Size == 0 {
			continue
		}
		if r.Size > maxPrefetch {
			r.Size = maxPrefetch
		}
		rs = append(rs, r)
	}
	if len(rs) == 0 {
		return
	}
	if bp, ok := t.(BatchPrefetcher); ok {
		bp.PrefetchRanges(rs)
		return
	}
	for _, r := range rs {
		Prefetch(t, r.Addr, r.Size)
	}
}

// maxPrefetch bounds a single coalesced object fetch; anything larger is
// walked via containers anyway, so prefetching it whole would waste link
// bandwidth.
const maxPrefetch = 64 << 10

// Prefetch hints that [addr, addr+size) is about to be read field by field.
// On caching targets this coalesces the whole range into large transactions;
// on raw targets it is a no-op (never a wasted read).
func Prefetch(t Target, addr, size uint64) {
	if addr == 0 || size == 0 {
		return
	}
	if size > maxPrefetch {
		size = maxPrefetch
	}
	if addr+size < addr {
		size = -addr // clamp a wrapping range (poisoned pointer) at the top
	}
	if p, ok := t.(Prefetcher); ok {
		p.Prefetch(addr, size)
	}
}

// ReadStruct batches the fetch of a whole typed object: one transaction for
// the object instead of one per field. The ViewCL interpreter calls this
// when materializing a box, so the per-field reads that follow are cache
// hits on snapshot-backed targets.
func ReadStruct(t Target, addr uint64, typ *ctypes.Type) {
	if typ == nil {
		return
	}
	Prefetch(t, addr, typ.Size())
}

// --- scalar read helpers ------------------------------------------------------

// scratch8 pools the byte buffers the scalar helpers read through. A local
// array would be cleaner, but a slice of it passed through the Target
// interface escapes, and these helpers run once per pointer chase — the
// per-call heap traffic was a top allocation site under profile.
var scratch8 = sync.Pool{New: func() any { return new([8]byte) }}

// ReadU8 reads one byte.
func ReadU8(t Target, addr uint64) (uint8, error) {
	bp := scratch8.Get().(*[8]byte)
	err := t.ReadMemory(addr, bp[:1])
	v := bp[0]
	scratch8.Put(bp)
	if err != nil {
		return 0, err
	}
	return v, nil
}

// ReadU16 reads a little-endian 16-bit value.
func ReadU16(t Target, addr uint64) (uint16, error) {
	bp := scratch8.Get().(*[8]byte)
	err := t.ReadMemory(addr, bp[:2])
	v := uint16(bp[0]) | uint16(bp[1])<<8
	scratch8.Put(bp)
	if err != nil {
		return 0, err
	}
	return v, nil
}

// ReadU32 reads a little-endian 32-bit value.
func ReadU32(t Target, addr uint64) (uint32, error) {
	bp := scratch8.Get().(*[8]byte)
	err := t.ReadMemory(addr, bp[:4])
	v := uint32(bp[0]) | uint32(bp[1])<<8 | uint32(bp[2])<<16 | uint32(bp[3])<<24
	scratch8.Put(bp)
	if err != nil {
		return 0, err
	}
	return v, nil
}

// ReadU64 reads a little-endian 64-bit value.
func ReadU64(t Target, addr uint64) (uint64, error) {
	bp := scratch8.Get().(*[8]byte)
	err := t.ReadMemory(addr, bp[:8])
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(bp[i])
	}
	scratch8.Put(bp)
	if err != nil {
		return 0, err
	}
	return v, nil
}

// ReadUint reads a little-endian unsigned scalar of the given byte size
// (1, 2, 4 or 8 — the sizes C integer layouts produce).
func ReadUint(t Target, addr uint64, size uint64) (uint64, error) {
	switch size {
	case 1:
		v, err := ReadU8(t, addr)
		return uint64(v), err
	case 2:
		v, err := ReadU16(t, addr)
		return uint64(v), err
	case 4:
		v, err := ReadU32(t, addr)
		return uint64(v), err
	case 8:
		return ReadU64(t, addr)
	}
	return 0, fmt.Errorf("target: bad scalar size %d at %#x", size, addr)
}

// cstringChunk is how many bytes ReadCString pulls per transaction. Reading
// byte-at-a-time would cost one modeled KGDB round trip per character;
// chunking keeps strings at one or two transactions.
const cstringChunk = 64

// ReadCString reads a NUL-terminated string at addr, up to max bytes, in
// page-bounded chunks. If no NUL appears within max bytes the truncated
// prefix is returned without error. A string running off the edge of mapped
// memory yields the mapped prefix; only a completely unreadable first byte
// is an error — the same semantics as a byte-wise walk, minus the
// transactions.
func ReadCString(t Target, addr uint64, max int) (string, error) {
	out := make([]byte, 0, 32)
	for read := 0; read < max; {
		n := max - read
		if n > cstringChunk {
			n = cstringChunk
		}
		// Never let a chunk cross a page boundary: page-granular backends
		// fail whole ranges, and we must degrade exactly like a byte walk.
		cur := addr + uint64(read)
		if room := PageSize - int(cur&(PageSize-1)); n > room {
			n = room
		}
		buf := make([]byte, n)
		if err := t.ReadMemory(cur, buf); err != nil {
			if read > 0 {
				break // partial string at a mapping edge: return what we have
			}
			return "", err
		}
		for _, c := range buf {
			if c == 0 {
				return string(out), nil
			}
			out = append(out, c)
		}
		read += n
	}
	return string(out), nil
}
