package target

import (
	"sync"
	"testing"
	"time"

	"visualinux/internal/ctypes"
	"visualinux/internal/mem"
)

func fixture(t *testing.T) (*Sim, uint64) {
	t.Helper()
	m := mem.New()
	base := uint64(0x1000_0000)
	data := make([]byte, 4*PageSize)
	for i := range data {
		data[i] = byte(i * 3)
	}
	m.Write(base, data)
	return NewSim(m, ctypes.NewRegistry()), base
}

func TestSimSymbols(t *testing.T) {
	s, base := fixture(t)
	s.AddSymbol("init_task", base, nil)
	s.AddSymbol("jiffies", base+8, nil)
	if sym, ok := s.LookupSymbol("init_task"); !ok || sym.Addr != base {
		t.Fatalf("LookupSymbol(init_task) = %+v, %v", sym, ok)
	}
	if name, ok := s.SymbolAt(base + 8); !ok || name != "jiffies" {
		t.Fatalf("SymbolAt = %q, %v", name, ok)
	}
	syms := s.Symbols()
	if len(syms) != 2 || syms[0].Name != "init_task" || syms[1].Name != "jiffies" {
		t.Fatalf("Symbols() order lost: %+v", syms)
	}
}

func TestReadCStringChunked(t *testing.T) {
	m := mem.New()
	base := uint64(0x2000_0000)
	m.WriteCString(base, "hello")
	s := NewSim(m, ctypes.NewRegistry())

	got, err := ReadCString(s, base, 256)
	if err != nil || got != "hello" {
		t.Fatalf("ReadCString = %q, %v", got, err)
	}
	// A 64-byte chunk would cross into the unmapped next page; the page
	// clamp must keep the in-page prefix readable.
	tail := base + uint64(mem.PageSize) - 3
	m.Write(tail, []byte{'h', 'i', '!'}) // runs to the exact page edge, no NUL
	got, err = ReadCString(s, tail, 256)
	if err != nil || got != "hi!" {
		t.Fatalf("edge ReadCString = %q, %v (want partial prefix, nil)", got, err)
	}
	// Entirely unmapped start errors.
	if _, err := ReadCString(s, 0xdead_0000, 16); err == nil {
		t.Fatal("unmapped ReadCString succeeded")
	}
}

func TestSnapshotHitMissInvalidate(t *testing.T) {
	s, base := fixture(t)
	snap := NewSnapshot(s)

	var b8 [8]byte
	if err := snap.ReadMemory(base, b8[:]); err != nil {
		t.Fatal(err)
	}
	underReads, _ := s.Stats().Snapshot()
	if underReads != 1 {
		t.Fatalf("first read: underlying reads = %d, want 1 page fill", underReads)
	}
	// Every subsequent read inside the page is a cache hit: no new
	// underlying traffic.
	for off := uint64(8); off < PageSize; off += 512 {
		if err := snap.ReadMemory(base+off, b8[:]); err != nil {
			t.Fatal(err)
		}
	}
	if r, _ := s.Stats().Snapshot(); r != underReads {
		t.Fatalf("cache hits leaked to underlying target: %d reads", r)
	}
	hits, misses := snap.CacheStats()
	if misses != 1 || hits == 0 {
		t.Fatalf("CacheStats = %d hits, %d misses", hits, misses)
	}
	// Logical reads are still counted on the snapshot itself.
	if logical, _ := snap.Stats().Snapshot(); logical == 0 {
		t.Fatal("snapshot did not count logical reads")
	}

	// Invalidate forgets everything: next read refills.
	snap.Invalidate()
	if err := snap.ReadMemory(base, b8[:]); err != nil {
		t.Fatal(err)
	}
	if r, _ := s.Stats().Snapshot(); r != underReads+1 {
		t.Fatalf("after Invalidate: underlying reads = %d, want %d", r, underReads+1)
	}

	// Reads through unmapped memory still error like the raw target.
	if err := snap.ReadMemory(0xdead_0000_0000, b8[:]); err == nil {
		t.Fatal("unmapped read succeeded through snapshot")
	}
}

func TestSnapshotPrefetchCoalesces(t *testing.T) {
	s, base := fixture(t)
	snap := NewSnapshot(s)

	// Prefetching three pages must cost ONE underlying transaction.
	Prefetch(snap, base, 3*PageSize)
	reads, bytes := s.Stats().Snapshot()
	if reads != 1 {
		t.Fatalf("3-page prefetch took %d transactions, want 1 coalesced", reads)
	}
	if bytes != 3*PageSize {
		t.Fatalf("prefetch transferred %d bytes, want %d", bytes, 3*PageSize)
	}
	// Everything inside the range is now a hit.
	var b [16]byte
	for off := uint64(0); off < 3*PageSize; off += PageSize / 2 {
		if err := snap.ReadMemory(base+off, b[:]); err != nil {
			t.Fatal(err)
		}
	}
	if r, _ := s.Stats().Snapshot(); r != 1 {
		t.Fatalf("post-prefetch reads leaked: %d underlying transactions", r)
	}

	// Prefetch on a non-caching target is a no-op, never a wasted read.
	before, _ := s.Stats().Snapshot()
	Prefetch(s, base, 2*PageSize)
	if after, _ := s.Stats().Snapshot(); after != before {
		t.Fatal("Prefetch on a raw target issued reads")
	}
}

func TestLatencyAccounting(t *testing.T) {
	s, base := fixture(t)
	model := LatencyModel{PerRead: 5 * time.Millisecond, PerByte: 2 * time.Microsecond}
	lt := WithLatency(s, model)

	var b8 [8]byte
	for i := 0; i < 10; i++ {
		if err := lt.ReadMemory(base+uint64(8*i), b8[:]); err != nil {
			t.Fatal(err)
		}
	}
	reads, bytes, txns := lt.Stats().Totals()
	if reads != 10 || bytes != 80 || txns != 10 {
		t.Fatalf("stats = %d reads, %d bytes, %d txns", reads, bytes, txns)
	}
	want := 10 * model.Cost(8)
	if got := lt.VirtualElapsed(); got != want {
		t.Fatalf("VirtualElapsed = %v, want reads*PerRead + bytes*PerByte = %v", got, want)
	}
	lt.ResetVirtual()
	if lt.VirtualElapsed() != 0 {
		t.Fatal("ResetVirtual did not zero the clock")
	}
}

func TestLatencySleepModeKeepsVirtualZero(t *testing.T) {
	s, base := fixture(t)
	lt := WithLatency(s, LatencyModel{PerRead: time.Microsecond, Sleep: true})
	var b8 [8]byte
	if err := lt.ReadMemory(base, b8[:]); err != nil {
		t.Fatal(err)
	}
	if lt.VirtualElapsed() != 0 {
		t.Fatal("Sleep mode must not also accumulate virtual time (double count)")
	}
}

// TestSnapshotOverLatency is the Table 4 layering: cache hits must cost
// zero modeled link time.
func TestSnapshotOverLatency(t *testing.T) {
	s, base := fixture(t)
	lt := WithLatency(s, DefaultKGDB)
	snap := NewSnapshot(lt)

	var b8 [8]byte
	if err := snap.ReadMemory(base, b8[:]); err != nil {
		t.Fatal(err)
	}
	afterFill := lt.VirtualElapsed()
	if afterFill == 0 {
		t.Fatal("page fill should cross the modeled link")
	}
	for i := 0; i < 100; i++ {
		if err := snap.ReadMemory(base+uint64(8*i), b8[:]); err != nil {
			t.Fatal(err)
		}
	}
	if got := lt.VirtualElapsed(); got != afterFill {
		t.Fatalf("cache hits cost modeled time: %v -> %v", afterFill, got)
	}
}

func TestWithStatsIsolation(t *testing.T) {
	s, base := fixture(t)
	a, b := WithStats(s), WithStats(s)
	var buf [8]byte
	if err := a.ReadMemory(base, buf[:]); err != nil {
		t.Fatal(err)
	}
	ar, _ := a.Stats().Snapshot()
	br, _ := b.Stats().Snapshot()
	if ar != 1 || br != 0 {
		t.Fatalf("stats views not isolated: a=%d b=%d", ar, br)
	}
	if under, _ := s.Stats().Snapshot(); under != 1 {
		t.Fatalf("underlying target missed the read: %d", under)
	}
}

func TestReadUint(t *testing.T) {
	m := mem.New()
	base := uint64(0x3000_0000)
	m.WriteU64(base, 0x1122_3344_5566_7788)
	s := NewSim(m, ctypes.NewRegistry())
	for _, c := range []struct {
		size uint64
		want uint64
	}{{1, 0x88}, {2, 0x7788}, {4, 0x5566_7788}, {8, 0x1122_3344_5566_7788}} {
		got, err := ReadUint(s, base, c.size)
		if err != nil || got != c.want {
			t.Errorf("ReadUint size %d = %#x, %v (want %#x)", c.size, got, err, c.want)
		}
	}
	if _, err := ReadUint(s, base, 3); err == nil {
		t.Error("ReadUint accepted size 3")
	}
}

// TestSnapshotConcurrent hammers one snapshot from many goroutines mixing
// reads, prefetches and invalidates — the parallel-extraction sharing
// pattern. Run under -race.
func TestSnapshotConcurrent(t *testing.T) {
	s, base := fixture(t)
	snap := NewSnapshot(s)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var b [64]byte
			for i := 0; i < 200; i++ {
				off := uint64((g*131 + i*67) % (4*PageSize - 64))
				if err := snap.ReadMemory(base+off, b[:]); err != nil {
					t.Errorf("read %#x: %v", base+off, err)
					return
				}
				if b[0] != byte((off)*3) {
					t.Errorf("read %#x returned wrong data", base+off)
					return
				}
				if i%50 == 0 {
					Prefetch(snap, base, 2*PageSize)
				}
				if g == 0 && i%97 == 0 {
					snap.Invalidate()
				}
			}
		}(g)
	}
	wg.Wait()
}
