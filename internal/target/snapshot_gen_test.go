package target

import (
	"bytes"
	"testing"

	"visualinux/internal/ctypes"
	"visualinux/internal/mem"
)

// hashOnly hides the write journal of the target under it while keeping
// content hashing — the "stub without the dirty-ranges annex" personality.
// Embedding the Target interface (not the concrete Sim) means only Target's
// method set is promoted, so type assertions see exactly what's declared.
type hashOnly struct{ Target }

func (h hashOnly) HashBlocks(addr, size uint64) ([]uint64, bool) {
	return HashBlocks(h.Target, addr, size)
}

// bare hides both revalidation capabilities: the dumbest possible stub.
type bare struct{ Target }

func genFixture(t *testing.T) (*mem.Memory, *Sim, uint64) {
	t.Helper()
	m := mem.New()
	base := uint64(0x4000_0000)
	data := make([]byte, 2*PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	m.Write(base, data)
	return m, NewSim(m, ctypes.NewRegistry()), base
}

func readPage(t *testing.T, s *Snapshot, addr uint64) []byte {
	t.Helper()
	buf := make([]byte, PageSize)
	if err := s.ReadMemory(addr, buf); err != nil {
		t.Fatalf("ReadMemory(%#x): %v", addr, err)
	}
	return buf
}

// Advance must keep untouched pages servable with zero link traffic when
// the write journal answers, and the generation must be monotone.
func TestAdvancePromotesUntouchedPages(t *testing.T) {
	_, sim, base := genFixture(t)
	c := WithStats(sim)
	s := NewSnapshot(c)

	readPage(t, s, base)
	if g := s.Generation(); g != 1 {
		t.Fatalf("initial generation = %d, want 1", g)
	}
	before := c.Stats().BytesRead.Load()

	s.Advance()
	if g := s.Generation(); g != 2 {
		t.Fatalf("generation after Advance = %d, want 2", g)
	}
	if p := s.Promotions(); p == 0 {
		t.Fatal("journal answered but no page was promoted clean")
	}
	readPage(t, s, base)
	if d := c.Stats().BytesRead.Load() - before; d != 0 {
		t.Fatalf("promoted page cost %d link bytes on re-read, want 0", d)
	}
	if s.Revalidations() != 0 || s.StaleRefetches() != 0 {
		t.Fatalf("clean promotion took the slow path: reval=%d refetch=%d",
			s.Revalidations(), s.StaleRefetches())
	}
}

// The deterministic bytes-on-link contract of sub-page granularity: an
// 8-byte mutation costs exactly one 256 B block on the wire after resume,
// not a 4 KiB page — via the journal's dirty bits and, without a journal,
// via hash revalidation.
func TestSubPageRefetchBytesOnLink(t *testing.T) {
	for _, tc := range []struct {
		name string
		wrap func(Target) Target
	}{
		{"journal-dirty-bits", func(u Target) Target { return u }},
		{"hash-revalidation", func(u Target) Target { return hashOnly{u} }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, sim, base := genFixture(t)
			c := WithStats(tc.wrap(sim))
			s := NewSnapshot(c)

			readPage(t, s, base)
			// Mutate 8 bytes inside the second SubPage block.
			patch := []byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4}
			m.Write(base+SubPage+16, patch)
			before := c.Stats().BytesRead.Load()

			s.Advance()
			got := readPage(t, s, base)
			if !bytes.Equal(got[SubPage+16:SubPage+24], patch) {
				t.Fatalf("stale bytes served after Advance: %x", got[SubPage+16:SubPage+24])
			}
			if d := c.Stats().BytesRead.Load() - before; d != SubPage {
				t.Fatalf("revalidating an 8-byte mutation moved %d link bytes, want exactly %d", d, SubPage)
			}
			fills, fillBytes := s.SubpageFills()
			if fills != 1 || fillBytes != SubPage {
				t.Fatalf("SubpageFills = %d runs / %d bytes, want 1 / %d", fills, fillBytes, SubPage)
			}
		})
	}
}

// A stale page whose content did not change costs zero refetch bytes under
// hash revalidation, and stays provably unchanged for the figure-level
// delta check.
func TestHashRevalidationCleanPage(t *testing.T) {
	_, sim, base := genFixture(t)
	c := WithStats(hashOnly{sim})
	s := NewSnapshot(c)

	readPage(t, s, base)
	before := c.Stats().BytesRead.Load()
	s.Advance()
	readPage(t, s, base)
	if d := c.Stats().BytesRead.Load() - before; d != 0 {
		t.Fatalf("clean stale page refetched %d bytes under hash revalidation, want 0", d)
	}
	if s.Revalidations() == 0 {
		t.Fatal("no hash revalidation counted")
	}
	if c.Stats().HashChecks.Load() == 0 {
		t.Fatal("no hash round trip counted on the link stats")
	}
	if !s.RangesUnchangedSince([]Range{{Addr: base, Size: PageSize}}, 1) {
		t.Fatal("revalidated-identical page reported as changed since gen 1")
	}
}

// A chain with neither journal nor hashes falls back to whole-page
// refetch — never worse than the old wholesale Invalidate.
func TestStaleRefetchWithoutCapabilities(t *testing.T) {
	_, sim, base := genFixture(t)
	c := WithStats(bare{sim})
	s := NewSnapshot(c)

	readPage(t, s, base)
	before := c.Stats().BytesRead.Load()
	s.Advance()
	readPage(t, s, base)
	if d := c.Stats().BytesRead.Load() - before; d != PageSize {
		t.Fatalf("capability-less stale page moved %d bytes, want %d", d, PageSize)
	}
	if s.StaleRefetches() == 0 {
		t.Fatal("whole-page stale refetch not counted")
	}
}

// RangesUnchangedSince distinguishes the mutated page from its neighbor
// after the pages have been revalidated.
func TestRangesUnchangedSinceTracksMutation(t *testing.T) {
	m, sim, base := genFixture(t)
	s := NewSnapshot(WithStats(sim))

	readPage(t, s, base)
	readPage(t, s, base+PageSize)
	gen := s.Generation()

	m.WriteU64(base+PageSize+64, 0xfeed_f00d)
	s.Advance()
	readPage(t, s, base)
	readPage(t, s, base+PageSize)

	if !s.RangesUnchangedSince([]Range{{Addr: base, Size: PageSize}}, gen) {
		t.Fatal("untouched page reported changed")
	}
	if s.RangesUnchangedSince([]Range{{Addr: base + PageSize, Size: PageSize}}, gen) {
		t.Fatal("mutated page reported unchanged")
	}
	if s.RangesUnchangedSince([]Range{{Addr: base, Size: 2 * PageSize}}, gen) {
		t.Fatal("range overlapping the mutated page reported unchanged")
	}
}

// Generations stay monotone across mixed Advance/Invalidate, and a page
// cached before Invalidate is really gone (full refetch), unlike Advance.
func TestGenerationMonotoneAcrossBoundaries(t *testing.T) {
	_, sim, base := genFixture(t)
	c := WithStats(sim)
	s := NewSnapshot(c)

	last := s.Generation()
	for i := 0; i < 3; i++ {
		readPage(t, s, base)
		s.Advance()
		if g := s.Generation(); g <= last {
			t.Fatalf("generation not monotone: %d after %d", g, last)
		} else {
			last = g
		}
	}
	before := c.Stats().BytesRead.Load()
	s.Invalidate()
	readPage(t, s, base)
	if d := c.Stats().BytesRead.Load() - before; d != PageSize {
		t.Fatalf("page after Invalidate moved %d bytes, want full %d", d, PageSize)
	}
}
