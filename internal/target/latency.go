package target

import (
	"sync/atomic"
	"time"

	"visualinux/internal/ctypes"
)

// LatencyModel prices one read transaction on a slow debug link. The paper
// measures KGDB over serial on a Raspberry Pi 400 at roughly 5 ms per
// retrieved u64 — latency-bound, not bandwidth-bound — so the model charges
// a fixed per-transaction cost plus a small per-byte cost.
type LatencyModel struct {
	PerRead time.Duration // round-trip cost charged per transaction
	PerByte time.Duration // serial bandwidth cost per transferred byte
	// PerContinuation is the round-trip cost of a follow-up packet of an
	// already-open transfer (a qXfer chunk reply): the stub streams a reply
	// it has already prepared, so a continuation pays the wire turnaround
	// but never the ~PerRead memory-walk cost of opening a transfer.
	PerContinuation time.Duration
	// PerHashCheck is the round-trip cost of one stub-side metadata query —
	// a block-hash exchange or a dirty-range journal poll. The stub walks
	// memory it already has mapped and replies with a few dozen bytes, so
	// this sits an order of magnitude under PerRead: revalidating a stale
	// page by hash must be much cheaper than refetching it, or the
	// incremental path would be pointless.
	PerHashCheck time.Duration
	// Sleep really sleeps per read instead of accounting on the virtual
	// clock, turning modeled time into wall time for live demos.
	Sleep bool
}

// Cost prices one transaction of n bytes.
func (m LatencyModel) Cost(n int) time.Duration {
	return m.PerRead + time.Duration(n)*m.PerByte
}

// LinkCost prices a whole transfer mix on the modeled link: txns opened
// transfers, conts continuation packets, n bytes moved. This is the
// deterministic cost function the RSP packet-size benchmarks use — no wall
// clock, so the comparison across packet sizes is exact.
func (m LatencyModel) LinkCost(txns, conts, n uint64) time.Duration {
	return time.Duration(txns)*m.PerRead +
		time.Duration(conts)*m.PerContinuation +
		time.Duration(n)*m.PerByte
}

// DefaultKGDB is the "KGDB (rpi-400)" personality of Table 4.
var DefaultKGDB = LatencyModel{
	PerRead:         5 * time.Millisecond,
	PerByte:         2 * time.Microsecond,
	PerContinuation: 50 * time.Microsecond,
	PerHashCheck:    500 * time.Microsecond,
}

// Latency wraps a target with a latency model. Every ReadMemory that
// reaches it is one modeled transaction; the accumulated cost is read back
// with VirtualElapsed. Layer a Snapshot on top and cache hits never get
// here — that is exactly the coalescing win Table 4's KGDB column shows.
type Latency struct {
	under   Target
	model   LatencyModel
	stats   Stats
	virtual atomic.Int64 // accumulated modeled nanoseconds
}

// WithLatency wraps t with the given cost model.
func WithLatency(t Target, model LatencyModel) *Latency {
	return &Latency{under: t, model: model}
}

// ReadMemory implements Target, charging the model per transaction.
func (l *Latency) ReadMemory(addr uint64, buf []byte) error {
	l.stats.CountRead(len(buf))
	l.charge(l.model.Cost(len(buf)))
	return l.under.ReadMemory(addr, buf)
}

// Under returns the wrapped target.
func (l *Latency) Under() Target { return l.under }

// ClipMapped implements RangeProber when the underlying target does. The
// memory map is metadata (DWARF-side, not guest reads), so no latency is
// charged.
func (l *Latency) ClipMapped(addr, size uint64) ([]Range, bool) {
	return ClipMapped(l.under, addr, size)
}

// charge accounts one modeled cost on the virtual clock (or the wall
// clock in Sleep mode).
func (l *Latency) charge(cost time.Duration) {
	if l.model.Sleep {
		time.Sleep(cost)
	} else {
		l.virtual.Add(int64(cost))
	}
}

// HashBlocks implements PageHasher when the underlying target does, charging
// the metadata round trip plus the wire cost of the returned hashes.
func (l *Latency) HashBlocks(addr, size uint64) ([]uint64, bool) {
	hashes, ok := HashBlocks(l.under, addr, size)
	if ok {
		l.stats.HashChecks.Add(1)
		l.charge(l.model.PerHashCheck + time.Duration(len(hashes)*8)*l.model.PerByte)
	}
	return hashes, ok
}

// DirtySince implements DirtyTracker when the underlying target does. One
// cheap metadata round trip: the journal lives on the stub side and its
// reply is a handful of ranges.
func (l *Latency) DirtySince(mark uint64) ([]Range, uint64, bool) {
	d, have := l.under.(DirtyTracker)
	if !have {
		return nil, 0, false
	}
	ranges, next, ok := d.DirtySince(mark)
	l.charge(l.model.PerHashCheck + time.Duration(len(ranges)*16)*l.model.PerByte)
	return ranges, next, ok
}

// VirtualElapsed returns the modeled time accumulated so far. In Sleep
// mode it stays zero: the cost was already paid in wall time.
func (l *Latency) VirtualElapsed() time.Duration {
	return time.Duration(l.virtual.Load())
}

// ResetVirtual zeroes the virtual clock (between measurements).
func (l *Latency) ResetVirtual() { l.virtual.Store(0) }

// LookupSymbol implements Target (symbols are local, like vmlinux DWARF —
// no link traffic).
func (l *Latency) LookupSymbol(name string) (Symbol, bool) { return l.under.LookupSymbol(name) }

// SymbolAt implements Target.
func (l *Latency) SymbolAt(addr uint64) (string, bool) { return l.under.SymbolAt(addr) }

// Types implements Target.
func (l *Latency) Types() *ctypes.Registry { return l.under.Types() }

// Stats implements Target: the counters of transactions that actually
// crossed the modeled link.
func (l *Latency) Stats() *Stats { return &l.stats }

var _ Target = (*Latency)(nil)
