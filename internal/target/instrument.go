package target

import (
	"sync/atomic"
	"time"

	"visualinux/internal/ctypes"
	"visualinux/internal/obs"
)

// Instrumented is the observability tap of a target chain. It sits at link
// level — typically directly under a Snapshot, so every ReadMemory that
// reaches it is one real (or modeled) link transaction, never a cache hit —
// and does two things per transaction:
//
//   - bumps the shared Observer counters (reads, bytes, transactions) and
//     the per-stage latency histogram;
//   - when a per-extraction tracer is attached (the ViewCL interpreter
//     attaches one for the duration of a run), emits a leaf "target.read"
//     span tagged with the address range, byte count, and — when the
//     underlying target models a slow link — the modeled KGDB nanoseconds.
//
// The tracer is held in an atomic pointer: extraction runs swap it in and
// out while other sessions over the same chain keep reading.
type Instrumented struct {
	under  Target
	stats  Stats
	o      *obs.Observer
	tracer atomic.Pointer[obs.Tracer]
	tags   []obs.Tag // static tags stamped on every transaction span

	// virtual is non-nil when the underlying chain accumulates modeled
	// link time (a *Latency); transactions then carry model_ns tags.
	virtual interface{ VirtualElapsed() time.Duration }

	// readHist is the per-stage histogram handle, resolved once: the
	// registry lookup would otherwise cost a lock per link transaction.
	readHist *obs.Histogram
}

// Instrument wraps t with an observability tap feeding o. Static tags
// (e.g. {"cache", "miss"} under a snapshot) are stamped on every
// transaction span.
func Instrument(t Target, o *obs.Observer, tags ...obs.Tag) *Instrumented {
	in := &Instrumented{under: t, o: o, tags: tags}
	if v, ok := t.(interface{ VirtualElapsed() time.Duration }); ok {
		in.virtual = v
	}
	if o != nil {
		in.readHist = o.Registry.Histogram(`vl_stage_duration_ms{stage="target_read"}`,
			"pipeline stage latency by stage", nil)
	}
	return in
}

// SetTracer attaches (or, with nil, detaches) the per-extraction tracer.
// Implements obs.TracerCarrier.
func (in *Instrumented) SetTracer(tr *obs.Tracer) { in.tracer.Store(tr) }

// ReadMemory implements Target: one transaction, observed.
func (in *Instrumented) ReadMemory(addr uint64, buf []byte) error {
	in.stats.CountRead(len(buf))
	if in.o != nil {
		in.o.LinkReads.Inc()
		in.o.LinkTxns.Inc()
		in.o.LinkBytes.Add(uint64(len(buf)))
	}
	tr := in.tracer.Load()
	if tr == nil {
		if in.o == nil {
			return in.under.ReadMemory(addr, buf)
		}
		// Metrics-only path: histogram the transaction without a span.
		t0 := time.Now()
		v0 := in.virtualNow()
		err := in.under.ReadMemory(addr, buf)
		d := time.Since(t0) + in.virtualNow() - v0
		in.readHist.Observe(float64(d.Nanoseconds()) / 1e6)
		return err
	}
	sp := tr.StartSpan("target.read")
	sp.TagHex("addr", addr)
	sp.TagUint("bytes", uint64(len(buf)))
	for _, tg := range in.tags {
		sp.Tag(tg.Key, tg.Value)
	}
	t0 := time.Now()
	v0 := in.virtualNow()
	err := in.under.ReadMemory(addr, buf)
	modeled := in.virtualNow() - v0
	if modeled > 0 {
		sp.TagUint("model_ns", uint64(modeled))
	}
	if err != nil {
		sp.Tag("error", err.Error())
	}
	sp.End()
	d := time.Since(t0) + modeled
	in.readHist.Observe(float64(d.Nanoseconds()) / 1e6)
	return err
}

func (in *Instrumented) virtualNow() time.Duration {
	if in.virtual == nil {
		return 0
	}
	return in.virtual.VirtualElapsed()
}

// Prefetch implements Prefetcher when the underlying target does.
func (in *Instrumented) Prefetch(addr, size uint64) {
	if p, ok := in.under.(Prefetcher); ok {
		p.Prefetch(addr, size)
	}
}

// PrefetchRanges implements BatchPrefetcher when the underlying target does.
func (in *Instrumented) PrefetchRanges(ranges []Range) {
	if bp, ok := in.under.(BatchPrefetcher); ok {
		bp.PrefetchRanges(ranges)
	}
}

// ClipMapped implements RangeProber when the underlying target does.
func (in *Instrumented) ClipMapped(addr, size uint64) ([]Range, bool) {
	return ClipMapped(in.under, addr, size)
}

// HashBlocks implements PageHasher when the underlying target does.
func (in *Instrumented) HashBlocks(addr, size uint64) ([]uint64, bool) {
	hashes, ok := HashBlocks(in.under, addr, size)
	if ok {
		in.stats.HashChecks.Add(1)
	}
	return hashes, ok
}

// DirtySince implements DirtyTracker when the underlying target does.
func (in *Instrumented) DirtySince(mark uint64) ([]Range, uint64, bool) {
	return DirtySince(in.under, mark)
}

// PageData implements PageProvider when the underlying target does. Aliased
// pages never cross the (modeled) link, so this intentionally bypasses the
// link counters — zero-copy fills are free by construction, and counting them
// as transactions would misstate link traffic.
func (in *Instrumented) PageData(addr uint64) ([]byte, bool) {
	if pp, ok := in.under.(PageProvider); ok {
		return pp.PageData(addr)
	}
	return nil, false
}

// Under returns the wrapped target.
func (in *Instrumented) Under() Target { return in.under }

// LookupSymbol implements Target.
func (in *Instrumented) LookupSymbol(name string) (Symbol, bool) { return in.under.LookupSymbol(name) }

// SymbolAt implements Target.
func (in *Instrumented) SymbolAt(addr uint64) (string, bool) { return in.under.SymbolAt(addr) }

// Types implements Target.
func (in *Instrumented) Types() *ctypes.Registry { return in.under.Types() }

// Stats implements Target.
func (in *Instrumented) Stats() *Stats { return &in.stats }

var (
	_ Target            = (*Instrumented)(nil)
	_ obs.TracerCarrier = (*Instrumented)(nil)
)

// Underlier is implemented by every target wrapper in this package,
// exposing the next layer down so chain walkers can find a specific layer.
type Underlier interface {
	Under() Target
}

// AttachTracer walks t's wrapper chain and attaches tr to every
// obs.TracerCarrier found (nil detaches). It reports whether any carrier
// was reached — false means the chain is uninstrumented and no transaction
// spans will appear.
func AttachTracer(t Target, tr *obs.Tracer) bool {
	found := false
	for t != nil {
		if c, ok := t.(obs.TracerCarrier); ok {
			c.SetTracer(tr)
			found = true
		}
		u, ok := t.(Underlier)
		if !ok {
			break
		}
		t = u.Under()
	}
	return found
}
