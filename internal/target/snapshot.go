package target

import (
	"sync"
	"sync/atomic"

	"visualinux/internal/ctypes"
	"visualinux/internal/obs"
)

// PageSize is the granularity of the snapshot read cache: 4 KiB, the guest
// page size, which also matches the simulated memory's mapping granularity
// (so a page is either fully readable or fully absent).
const PageSize = 4096

// Snapshot is a page-granular read-through cache over any Target, valid
// for the lifetime of one stop event: while the machine is stopped its
// memory cannot change, so every page needs at most one fetch. Call
// Invalidate when the target resumes.
//
// Layered over a Latency (or a real RSP link), a Snapshot converts the
// many small field reads of an extraction into a few page-sized
// transactions: cache hits cost zero modeled link time. Contiguous missing
// pages are fetched in one coalesced transaction, so Prefetch of a
// multi-page object costs one round trip, not one per page.
//
// A Snapshot is safe for concurrent readers (parallel pane extraction over
// one stop event).
type Snapshot struct {
	under Target
	stats Stats

	mu    sync.RWMutex
	pages map[uint64][]byte

	hits          atomic.Uint64 // page lookups served from cache
	misses        atomic.Uint64 // pages fetched from the underlying target
	invalidations atomic.Uint64 // Invalidate calls (stop-event boundaries)

	// Observer counter handles (nil-safe when uninstrumented): the same
	// events as the atomic fields above, but aggregated process-wide so
	// every snapshot in every worker feeds one /debug/metrics view.
	mHits, mMisses, mFills, mInval *obs.Counter
}

// NewSnapshot wraps t with a fresh, empty cache.
func NewSnapshot(t Target) *Snapshot {
	return &Snapshot{under: t, pages: make(map[uint64][]byte)}
}

// Under returns the wrapped target (e.g. to read its link-level stats).
func (s *Snapshot) Under() Target { return s.under }

// Instrument mirrors the snapshot's cache events into the observer's
// shared counters (hit/miss/fill/invalidation series plus the derived
// hit-ratio gauge). Multiple snapshots may feed one observer; the series
// aggregate.
func (s *Snapshot) Instrument(o *obs.Observer) *Snapshot {
	if o != nil {
		s.mHits, s.mMisses, s.mFills, s.mInval = o.SnapHits, o.SnapMisses, o.SnapFills, o.SnapInvalidations
	}
	return s
}

// Invalidate drops every cached page. Call on resume: the stop event the
// snapshot was valid for is over.
func (s *Snapshot) Invalidate() {
	s.mu.Lock()
	s.pages = make(map[uint64][]byte)
	s.mu.Unlock()
	s.invalidations.Add(1)
	s.mInval.Inc()
}

// CacheStats returns page-granular hit/miss counts.
func (s *Snapshot) CacheStats() (hits, misses uint64) {
	return s.hits.Load(), s.misses.Load()
}

// Invalidations reports how many times the cache has been dropped.
func (s *Snapshot) Invalidations() uint64 { return s.invalidations.Load() }

// HitRatio reports the fraction of page lookups served from cache
// (0 when nothing has been looked up yet).
func (s *Snapshot) HitRatio() float64 {
	h, m := s.hits.Load(), s.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// ReadMemory implements Target, serving from cached pages and filling
// misses through the underlying target.
func (s *Snapshot) ReadMemory(addr uint64, buf []byte) error {
	s.stats.CountRead(len(buf))
	if len(buf) == 0 {
		return nil
	}
	if err := s.ensure(addr, uint64(len(buf))); err != nil {
		// A page in the range is unreadable. Degrade to a direct read of
		// exactly the requested range so error semantics match the
		// underlying target (partial ranges fail there too).
		return s.under.ReadMemory(addr, buf)
	}
	s.mu.RLock()
	resident := true
	for n := 0; n < len(buf) && resident; {
		cur := addr + uint64(n)
		p := s.pages[cur&^(PageSize-1)]
		if p == nil {
			resident = false // raced with Invalidate
			break
		}
		n += copy(buf[n:], p[cur&(PageSize-1):])
	}
	s.mu.RUnlock()
	if !resident {
		return s.under.ReadMemory(addr, buf)
	}
	return nil
}

// Prefetch implements Prefetcher: it pulls the page range covering
// [addr, addr+size) into the cache, coalescing adjacent missing pages into
// single large transactions. Errors are swallowed — unreadable stretches
// simply stay uncached and fail later at the precise read that needs them.
func (s *Snapshot) Prefetch(addr, size uint64) {
	if size == 0 {
		return
	}
	_ = s.ensure(addr, size)
}

// ensure makes every page covering [addr, addr+size) cache-resident,
// fetching runs of contiguous missing pages in one read each.
func (s *Snapshot) ensure(addr, size uint64) error {
	first := addr &^ (PageSize - 1)
	last := (addr + size - 1) &^ (PageSize - 1)

	// Fast path: everything already resident.
	s.mu.RLock()
	missing := false
	for base := first; ; base += PageSize {
		if _, ok := s.pages[base]; ok {
			s.hits.Add(1)
			s.mHits.Inc()
		} else {
			missing = true
		}
		if base == last {
			break
		}
	}
	s.mu.RUnlock()
	if !missing {
		return nil
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for base := first; ; base += PageSize {
		if _, ok := s.pages[base]; !ok {
			// Extend the run over every contiguous missing page.
			end := base
			for end != last {
				if _, ok := s.pages[end+PageSize]; ok {
					break
				}
				end += PageSize
			}
			run := make([]byte, end-base+PageSize)
			if err := s.under.ReadMemory(base, run); err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				s.mFills.Inc()
				for off := uint64(0); off < uint64(len(run)); off += PageSize {
					s.pages[base+off] = run[off : off+PageSize : off+PageSize]
					s.misses.Add(1)
					s.mMisses.Inc()
				}
			}
			base = end
		}
		if base >= last {
			break
		}
	}
	return firstErr
}

// LookupSymbol implements Target.
func (s *Snapshot) LookupSymbol(name string) (Symbol, bool) { return s.under.LookupSymbol(name) }

// SymbolAt implements Target.
func (s *Snapshot) SymbolAt(addr uint64) (string, bool) { return s.under.SymbolAt(addr) }

// Types implements Target.
func (s *Snapshot) Types() *ctypes.Registry { return s.under.Types() }

// Stats implements Target: logical reads as the extraction issued them
// (the underlying target's Stats count what actually crossed the link).
func (s *Snapshot) Stats() *Stats { return &s.stats }

var (
	_ Target     = (*Snapshot)(nil)
	_ Prefetcher = (*Snapshot)(nil)
)
