package target

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"visualinux/internal/ctypes"
	"visualinux/internal/obs"
)

// PageSize is the granularity of the snapshot read cache: 4 KiB, the guest
// page size, which also matches the simulated memory's mapping granularity
// (so a page is either fully readable or fully absent).
const PageSize = 4096

// spage is one cached page plus its incremental-validation state.
type spage struct {
	data []byte
	// gen is the snapshot generation this page was last known valid for.
	// A page whose gen lags the snapshot's is stale: its bytes are kept but
	// must be revalidated (by dirty-range journal or content hash) before
	// they may be served again.
	gen uint64
	// changed is the generation at which this page's content last actually
	// differed — the figure-level delta check compares it against the
	// generation a figure was extracted at.
	changed uint64
	// dirty flags SubPage blocks the write journal reported mutated since
	// the page was last validated; they are refetched (just those blocks,
	// not the page) on next access.
	dirty uint16
	// aliased marks data as a zero-copy reference into the sim's immutable
	// CoW page store rather than cache-owned bytes. Aliased data must never
	// be written in place: any refetch that finds changed content privatizes
	// the page first (unalias), mirroring the store's own CoW discipline.
	aliased bool
}

// unalias gives p cache-owned backing so refetch paths may write into it.
func (p *spage) unalias() {
	if p.aliased {
		p.data = append(make([]byte, 0, PageSize), p.data...)
		p.aliased = false
	}
}

// Snapshot is a page-granular read-through cache over any Target. Within one
// stop event every page needs at most one fetch; across stop events the
// cache is generation-tagged: Advance (the incremental resume boundary)
// makes pages stale instead of dropping them, and stale pages are
// revalidated lazily on next access —
//
//   - pages the target's write journal (DirtySince) covers are promoted for
//     free, with only journal-flagged SubPage blocks refetched;
//   - otherwise content hashes (HashBlocks) are exchanged and only
//     mismatching blocks refetched;
//   - a chain with neither capability refetches whole stale pages, which is
//     still never worse than the old drop-everything Invalidate.
//
// Invalidate keeps its wholesale semantics for callers that really want a
// cold cache.
//
// Layered over a Latency (or a real RSP link), a Snapshot converts the
// many small field reads of an extraction into a few page-sized
// transactions: cache hits cost zero modeled link time. Contiguous missing
// pages are fetched in one coalesced transaction, so Prefetch of a
// multi-page object costs one round trip, not one per page.
//
// A Snapshot is safe for concurrent readers (parallel pane extraction over
// one stop event).
type Snapshot struct {
	under Target
	stats Stats

	// provider is the chain's zero-copy capability, resolved once: non-nil
	// when the underlying target can hand out stable immutable page slices
	// (a sim backed by a CoW page store). Cache fills then alias store pages
	// instead of copying them, so a fleet of sessions forked from one
	// template shares snapshot cache bytes too, not just guest memory.
	provider PageProvider

	mu    sync.RWMutex
	pages map[uint64]*spage
	gen   uint64 // current generation; bumped by Advance and Invalidate
	// dirtyMark is the write-journal cursor of the last Advance; dirtyOK
	// records whether the chain answered the last poll (the graceful
	// degradation bit: false means hash revalidation carries the load).
	dirtyMark uint64
	dirtyOK   bool

	// tracer, when attached (per extraction, via AttachTracer), makes the
	// revalidation ladder visible in the round's span tree: hash exchanges,
	// journal-flagged block refetches and whole-page stale refetches emit
	// snapshot.* spans, with the underlying link reads nested inside them.
	// Without these spans, revalidation cost hides inside whichever box
	// span happened to trigger it — the blind spot that made span-driven
	// diagnosis misattribute steady-state rounds to graph build.
	tracer atomic.Pointer[obs.Tracer]

	hits          atomic.Uint64 // page lookups served from cache
	misses        atomic.Uint64 // pages fetched cold from the underlying target
	invalidations atomic.Uint64 // Invalidate calls (wholesale drops)
	batchRuns     atomic.Uint64 // coalesced batch-prefetch fills issued
	advances      atomic.Uint64 // Advance calls (incremental stop boundaries)
	revalidations atomic.Uint64 // stale pages revalidated by content hash
	promotions    atomic.Uint64 // stale pages promoted clean by the write journal
	staleRefetch  atomic.Uint64 // stale pages refetched whole (no hash capability)
	subFills      atomic.Uint64 // sub-page block-run refetches issued
	subBytes      atomic.Uint64 // bytes moved by sub-page refetches
	zeroCopy      atomic.Uint64 // pages filled by aliasing store pages (no copy)

	// Observer counter handles (nil-safe when uninstrumented): the same
	// events as the atomic fields above, but aggregated process-wide so
	// every snapshot in every worker feeds one /debug/metrics view.
	mHits, mMisses, mFills, mInval, mBatchRuns        *obs.Counter
	mAdvances, mReval, mPromoted, mStaleRef, mSubFill *obs.Counter
	mZeroCopy                                         *obs.Counter
}

// NewSnapshot wraps t with a fresh, empty cache. If the chain journals
// writes, the journal cursor is armed here — before anything is cached — so
// the first Advance can promote pages the journal proves untouched.
func NewSnapshot(t Target) *Snapshot {
	s := &Snapshot{under: t, pages: make(map[uint64]*spage), gen: 1}
	if pp, ok := t.(PageProvider); ok {
		s.provider = pp
	}
	if _, next, ok := DirtySince(t, ^uint64(0)); ok {
		s.dirtyMark, s.dirtyOK = next, true
	}
	return s
}

// Under returns the wrapped target (e.g. to read its link-level stats).
func (s *Snapshot) Under() Target { return s.under }

// Instrument mirrors the snapshot's cache events into the observer's
// shared counters (hit/miss/fill/invalidation series plus the derived
// hit-ratio gauge). Multiple snapshots may feed one observer; the series
// aggregate.
func (s *Snapshot) Instrument(o *obs.Observer) *Snapshot {
	if o != nil {
		s.mHits, s.mMisses, s.mFills, s.mInval = o.SnapHits, o.SnapMisses, o.SnapFills, o.SnapInvalidations
		s.mBatchRuns = o.BatchPrefetchRuns
		s.mAdvances, s.mReval = o.SnapAdvances, o.SnapRevalidations
		s.mPromoted, s.mStaleRef, s.mSubFill = o.SnapPromotions, o.SnapStaleRefetches, o.SnapSubpageFills
		s.mZeroCopy = o.SnapZeroCopyFills
	}
	return s
}

// SetTracer attaches (or, with nil, detaches) the per-extraction tracer
// that receives snapshot.* revalidation spans. Implements obs.TracerCarrier,
// so target.AttachTracer reaches it through the chain walk.
func (s *Snapshot) SetTracer(tr *obs.Tracer) { s.tracer.Store(tr) }

// span opens a revalidation span on the attached tracer (nil-safe no-op
// when no extraction is being traced).
func (s *Snapshot) span(name string) *obs.Span {
	return s.tracer.Load().StartSpan(name)
}

// Invalidate drops every cached page — the wholesale (pre-incremental)
// resume semantics, still right when the target reattached or the journal
// is known garbage.
func (s *Snapshot) Invalidate() {
	s.mu.Lock()
	s.pages = make(map[uint64]*spage)
	s.gen++
	s.mu.Unlock()
	s.invalidations.Add(1)
	s.mInval.Inc()
}

// Advance is the incremental stop-event boundary: the target ran and
// stopped again. Cached pages become stale rather than gone. When the
// chain's write journal can answer "what changed since the last stop",
// untouched pages are promoted to the new generation immediately (zero link
// traffic) and touched pages have exactly the mutated SubPage blocks
// flagged for refetch; otherwise every page stays stale and is lazily
// revalidated by content hash on next access.
func (s *Snapshot) Advance() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen++
	s.advances.Add(1)
	s.mAdvances.Inc()

	var dirty []Range
	if s.dirtyOK {
		ranges, next, ok := DirtySince(s.under, s.dirtyMark)
		if ok {
			dirty, s.dirtyMark = ranges, next
		} else {
			s.dirtyOK = false
		}
	}
	if !s.dirtyOK {
		// Journal unavailable or history lost: leave every page stale for
		// hash revalidation, and re-arm the cursor so the NEXT stop can use
		// the fast path again.
		if _, next, ok := DirtySince(s.under, ^uint64(0)); ok {
			s.dirtyMark, s.dirtyOK = next, true
		}
		return
	}

	// Journal answered: flag mutated blocks, promote everything else.
	flagged := make(map[uint64]uint16)
	for _, r := range dirty {
		if r.Size == 0 {
			continue
		}
		if r.Addr+r.Size-1 < r.Addr {
			r.Size = -r.Addr
		}
		firstB := r.Addr / SubPage
		lastB := (r.Addr + r.Size - 1) / SubPage
		for b := firstB; ; b++ {
			flagged[(b*SubPage)&^(PageSize-1)] |= 1 << (b % BlocksPerPage)
			if b == lastB {
				break
			}
		}
	}
	for base, p := range s.pages {
		if p.gen != s.gen-1 {
			// The page was already stale before this stop (a journal gap in
			// its past): promotion would skip revalidating that older gap.
			continue
		}
		p.gen = s.gen
		if bits, hit := flagged[base]; hit {
			p.dirty |= bits
		} else {
			s.promotions.Add(1)
			s.mPromoted.Inc()
		}
	}
}

// Generation returns the current snapshot generation.
func (s *Snapshot) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// RangesUnchangedSince revalidates every page covering the given ranges and
// reports whether all of their content is unchanged since generation
// `since`. This is the figure-level delta check: a figure whose recorded
// read set is clean needs no re-extraction at all. The revalidation work is
// the cheap kind (journal promotion or hash exchange) and is shared with any
// extraction that does run afterwards.
func (s *Snapshot) RangesUnchangedSince(ranges []Range, since uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range ranges {
		if r.Size == 0 {
			continue
		}
		if r.Addr+r.Size-1 < r.Addr {
			r.Size = -r.Addr
		}
		first := r.Addr &^ (PageSize - 1)
		last := (r.Addr + r.Size - 1) &^ (PageSize - 1)
		if err := s.validateLocked(first, last); err != nil {
			return false
		}
		for base := first; ; base += PageSize {
			p := s.pages[base]
			if p == nil || p.changed > since {
				return false
			}
			if base == last {
				break
			}
		}
	}
	return true
}

// CacheStats returns page-granular hit/miss counts.
func (s *Snapshot) CacheStats() (hits, misses uint64) {
	return s.hits.Load(), s.misses.Load()
}

// Invalidations reports how many times the cache has been dropped wholesale.
func (s *Snapshot) Invalidations() uint64 { return s.invalidations.Load() }

// Advances reports how many incremental stop boundaries the cache crossed.
func (s *Snapshot) Advances() uint64 { return s.advances.Load() }

// Revalidations reports stale pages revalidated via content hashes.
func (s *Snapshot) Revalidations() uint64 { return s.revalidations.Load() }

// Promotions reports stale pages promoted clean by the write journal.
func (s *Snapshot) Promotions() uint64 { return s.promotions.Load() }

// StaleRefetches reports stale pages refetched whole (no hash capability).
func (s *Snapshot) StaleRefetches() uint64 { return s.staleRefetch.Load() }

// SubpageFills returns the count of sub-page block-run refetches and the
// bytes they moved — the adaptive-granularity win for sparse pages.
func (s *Snapshot) SubpageFills() (runs, bytes uint64) {
	return s.subFills.Load(), s.subBytes.Load()
}

// BatchRuns reports how many coalesced batch-prefetch fills were issued.
func (s *Snapshot) BatchRuns() uint64 { return s.batchRuns.Load() }

// ZeroCopyFills reports pages filled by aliasing immutable store pages
// instead of copying them through the link.
func (s *Snapshot) ZeroCopyFills() uint64 { return s.zeroCopy.Load() }

// HitRatio reports the fraction of page lookups served from cache
// (0 when nothing has been looked up yet).
func (s *Snapshot) HitRatio() float64 {
	h, m := s.hits.Load(), s.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// current reports whether p may be served at generation gen without
// revalidation.
func (p *spage) current(gen uint64) bool { return p != nil && p.gen == gen && p.dirty == 0 }

// ReadMemory implements Target, serving from cached pages and filling
// misses through the underlying target.
func (s *Snapshot) ReadMemory(addr uint64, buf []byte) error {
	s.stats.CountRead(len(buf))
	if len(buf) == 0 {
		return nil
	}
	if err := s.ensure(addr, uint64(len(buf))); err != nil {
		// A page in the range is unreadable. Degrade to a direct read of
		// exactly the requested range so error semantics match the
		// underlying target (partial ranges fail there too).
		return s.under.ReadMemory(addr, buf)
	}
	s.mu.RLock()
	resident := true
	for n := 0; n < len(buf) && resident; {
		cur := addr + uint64(n)
		p := s.pages[cur&^(PageSize-1)]
		if !p.current(s.gen) {
			resident = false // raced with Invalidate/Advance
			break
		}
		n += copy(buf[n:], p.data[cur&(PageSize-1):])
	}
	s.mu.RUnlock()
	if !resident {
		return s.under.ReadMemory(addr, buf)
	}
	return nil
}

// Prefetch implements Prefetcher: it pulls the page range covering
// [addr, addr+size) into the cache, coalescing adjacent missing pages into
// single large transactions. Errors are swallowed — unreadable stretches
// simply stay uncached and fail later at the precise read that needs them.
func (s *Snapshot) Prefetch(addr, size uint64) {
	if size == 0 {
		return
	}
	_ = s.ensure(addr, size)
}

// maxBatchRun bounds one coalesced batch-prefetch fill: merged element runs
// longer than this (large arrays, whole slabs) are split so a single fill
// never exceeds the link's appetite.
const maxBatchRun = 256 << 10

// PrefetchRanges implements BatchPrefetcher: the cross-element batch pass.
// Every range a container walk yielded is page-aligned, sorted, and merged —
// adjacent elements' page runs (array slots, contiguous slab objects) become
// single fills — and each merged run is then filled like Prefetch would,
// clipped to the target's memory map when it exposes one. One unmapped page
// inside a merged run therefore costs only itself, never the whole fill.
func (s *Snapshot) PrefetchRanges(ranges []Range) {
	type span struct{ first, last uint64 } // inclusive page bases
	spans := make([]span, 0, len(ranges))
	for _, r := range ranges {
		if r.Size == 0 {
			continue
		}
		if r.Addr+r.Size-1 < r.Addr {
			r.Size = -r.Addr // clamp a wrapping range at the top
		}
		spans = append(spans, span{r.Addr &^ (PageSize - 1), (r.Addr + r.Size - 1) &^ (PageSize - 1)})
	}
	if len(spans) == 0 {
		return
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].first < spans[j].first })
	merged := spans[:1]
	for _, sp := range spans[1:] {
		cur := &merged[len(merged)-1]
		if cur.last+PageSize > cur.last && sp.first <= cur.last+PageSize {
			if sp.last > cur.last {
				cur.last = sp.last
			}
		} else {
			merged = append(merged, sp)
		}
	}
	for _, sp := range merged {
		for base := sp.first; ; {
			end := sp.last
			if end-base >= maxBatchRun {
				end = base + maxBatchRun - PageSize
			}
			s.prefetchRun(base, end)
			if end == sp.last {
				break
			}
			base = end + PageSize
		}
	}
}

// prefetchRun is one batch fill of the pages [first, last]: residency is
// checked under the read lock, and only a run that actually misses (or needs
// revalidation) counts as a batch run and reaches the link.
func (s *Snapshot) prefetchRun(first, last uint64) {
	s.mu.RLock()
	missing := false
	for base := first; ; base += PageSize {
		if s.pages[base].current(s.gen) {
			s.hits.Add(1)
			s.mHits.Inc()
		} else {
			missing = true
		}
		if base == last {
			break
		}
	}
	s.mu.RUnlock()
	if !missing {
		return
	}
	s.batchRuns.Add(1)
	s.mBatchRuns.Inc()
	s.mu.Lock()
	_ = s.validateLocked(first, last)
	s.mu.Unlock()
}

// ensure makes every page covering [addr, addr+size) cache-resident and
// current, fetching runs of contiguous missing pages in one read each and
// revalidating stale ones. Ranges that wrap past the top of the address
// space (a garbage or poisoned pointer fed to Prefetch) are clamped: without
// the clamp, last wraps below first and the page loops never terminate.
func (s *Snapshot) ensure(addr, size uint64) error {
	if size == 0 {
		return nil
	}
	if addr+size-1 < addr {
		size = -addr
	}
	first := addr &^ (PageSize - 1)
	last := (addr + size - 1) &^ (PageSize - 1)

	// Fast path: everything already resident and current.
	s.mu.RLock()
	missing := false
	for base := first; ; base += PageSize {
		if s.pages[base].current(s.gen) {
			s.hits.Add(1)
			s.mHits.Inc()
		} else {
			missing = true
		}
		if base == last {
			break
		}
	}
	s.mu.RUnlock()
	if !missing {
		return nil
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	return s.validateLocked(first, last)
}

// validateLocked brings every page of [first, last] (inclusive page bases)
// resident and current: journal-flagged blocks are refetched sub-page,
// remaining stale pages are revalidated by content hash (whole-page refetch
// when the chain cannot hash), and missing pages are filled in coalesced
// runs. Caller holds s.mu.
func (s *Snapshot) validateLocked(first, last uint64) error {
	s.revalidateStaleLocked(first, last)
	return s.fillLocked(first, last)
}

// revalidateStaleLocked resolves every stale or dirty-flagged page in
// [first, last]. Pages whose refetch fails are deleted so the fill pass
// retries them whole and reports the error. Caller holds s.mu.
func (s *Snapshot) revalidateStaleLocked(first, last uint64) {
	// Pass A — journal fast path: pages current by generation but carrying
	// dirty block flags refetch exactly those blocks.
	for base := first; ; base += PageSize {
		if p := s.pages[base]; p != nil && p.gen == s.gen && p.dirty != 0 {
			s.refetchBlocksLocked(base, p, p.dirty)
		}
		if base == last {
			break
		}
	}
	// Pass B — hash revalidation: contiguous runs of generation-stale pages
	// exchange content hashes in one query; only mismatching blocks refetch.
	for base := first; ; {
		p := s.pages[base]
		if p == nil || p.gen == s.gen {
			if base == last {
				break
			}
			base += PageSize
			continue
		}
		end := base
		for end != last {
			np := s.pages[end+PageSize]
			if np == nil || np.gen == s.gen {
				break
			}
			end += PageSize
		}
		s.revalidateRunLocked(base, end)
		if end == last {
			break
		}
		base = end + PageSize
	}
}

// pageScratch pools the page-sized scratch buffers the refetch paths read
// through. Steady-state revalidation rounds run these paths on every stop
// event; per-call make([]byte, ...) here was a top allocation site once the
// extraction itself stopped allocating.
var pageScratch = sync.Pool{New: func() any {
	b := make([]byte, PageSize)
	return &b
}}

// refetchBlocksLocked refetches the flagged SubPage blocks of one page,
// coalescing adjacent flagged blocks into single reads, and promotes the
// page. The fresh bytes are diffed against the cached ones so `changed` only
// moves when content really moved (a journaled write of identical bytes does
// not dirty dependent figures), and a zero-copy page is privatized before the
// first in-place update — never written through. On read failure the page is
// deleted; the fill pass will retry it whole. Caller holds s.mu.
func (s *Snapshot) refetchBlocksLocked(base uint64, p *spage, bits uint16) {
	sp := s.span("snapshot.subpage")
	sp.TagHex("page", base)
	defer sp.End()
	scratch := pageScratch.Get().(*[]byte)
	defer pageScratch.Put(scratch)
	contentChanged := false
	for i := 0; i < BlocksPerPage; {
		if bits&(1<<i) == 0 {
			i++
			continue
		}
		j := i
		for j+1 < BlocksPerPage && bits&(1<<(j+1)) != 0 {
			j++
		}
		off := uint64(i) * SubPage
		n := uint64(j-i+1) * SubPage
		tmp := (*scratch)[:n]
		if err := s.under.ReadMemory(base+off, tmp); err != nil {
			delete(s.pages, base)
			return
		}
		s.subFills.Add(1)
		s.mSubFill.Inc()
		s.subBytes.Add(n)
		if !bytes.Equal(tmp, p.data[off:off+n]) {
			contentChanged = true
			p.unalias()
			copy(p.data[off:], tmp)
		}
		i = j + 1
	}
	p.dirty = 0
	p.gen = s.gen
	if contentChanged {
		p.changed = s.gen
	}
}

// revalidateRunLocked revalidates the generation-stale pages [base, end] by
// one stub-side hash exchange, refetching only mismatching blocks. Without a
// hasher in the chain each page is refetched whole (still diffed, so
// `changed` stays accurate). Caller holds s.mu.
func (s *Snapshot) revalidateRunLocked(base, end uint64) {
	size := end - base + PageSize
	sp := s.span("snapshot.revalidate")
	sp.TagHex("base", base)
	sp.TagUint("pages", size/PageSize)
	defer sp.End()
	hashes, ok := HashBlocks(s.under, base, size)
	if !ok || len(hashes) != int(size/SubPage) {
		for pb := base; ; pb += PageSize {
			s.refetchPageLocked(pb)
			if pb == end {
				break
			}
		}
		return
	}
	for pb := base; ; pb += PageSize {
		p := s.pages[pb]
		hs := hashes[(pb-base)/SubPage:][:BlocksPerPage]
		var mismatch uint16
		for i := 0; i < BlocksPerPage; i++ {
			if HashBlock(p.data[i*SubPage:(i+1)*SubPage]) != hs[i] {
				mismatch |= 1 << i
			}
		}
		s.revalidations.Add(1)
		s.mReval.Inc()
		if mismatch == 0 {
			p.dirty = 0
			p.gen = s.gen // content unchanged: `changed` stays put
		} else {
			s.refetchBlocksLocked(pb, p, mismatch)
		}
		if pb == end {
			break
		}
	}
}

// refetchPageLocked refetches one stale page whole (the no-capability
// fallback), diffing content to keep `changed` accurate. Caller holds s.mu.
func (s *Snapshot) refetchPageLocked(pb uint64) {
	sp := s.span("snapshot.refetch")
	sp.TagHex("page", pb)
	defer sp.End()
	p := s.pages[pb]
	scratch := pageScratch.Get().(*[]byte)
	defer pageScratch.Put(scratch)
	tmp := *scratch
	if err := s.under.ReadMemory(pb, tmp); err != nil {
		delete(s.pages, pb)
		return
	}
	s.staleRefetch.Add(1)
	s.mStaleRef.Inc()
	if !bytes.Equal(tmp, p.data) {
		p.changed = s.gen
		p.unalias()
		copy(p.data, tmp)
	}
	p.dirty = 0
	p.gen = s.gen
}

// fillLocked fetches every missing page in [first, last] (inclusive page
// bases), coalescing runs of contiguous missing pages into one read each.
// Caller holds s.mu.
func (s *Snapshot) fillLocked(first, last uint64) error {
	var firstErr error
	for base := first; ; base += PageSize {
		if _, ok := s.pages[base]; !ok {
			// Extend the run over every contiguous missing page.
			end := base
			for end != last {
				if _, ok := s.pages[end+PageSize]; ok {
					break
				}
				end += PageSize
			}
			if err := s.fillRun(base, end); err != nil && firstErr == nil {
				firstErr = err
			}
			base = end
		}
		if base >= last {
			break
		}
	}
	return firstErr
}

// fillRun reads the pages [base, end] (inclusive bases) into the cache.
// When the target chain exposes a memory map, the run is clipped to mapped
// ranges before any read is issued — unmapped stretches are skipped, not
// attempted — and an error is still reported so ReadMemory keeps its
// fail-on-unreadable contract. Without a map, a failed multi-page run is
// retried page by page so the mapped pages around a hole land in the cache
// anyway.
func (s *Snapshot) fillRun(base, end uint64) error {
	size := end - base + PageSize
	if clipped, ok := ClipMapped(s.under, base, size); ok {
		var firstErr error
		covered := uint64(0)
		for _, r := range clipped {
			// Defensive page alignment: the query is page-aligned, so a sane
			// prober answers in whole pages; re-align and clamp regardless.
			lo := r.Addr &^ (PageSize - 1)
			hi := (r.End() - 1) &^ (PageSize - 1)
			if lo < base {
				lo = base
			}
			if hi > end {
				hi = end
			}
			if lo > hi {
				continue
			}
			if err := s.readRun(lo, hi-lo+PageSize); err != nil && firstErr == nil {
				firstErr = err
			}
			covered += hi - lo + PageSize
		}
		if firstErr != nil {
			return firstErr
		}
		if covered < size {
			return fmt.Errorf("target: %d of %d bytes unmapped in fill %#x+%#x",
				size-covered, size, base, size)
		}
		return nil
	}
	err := s.readRun(base, size)
	if err == nil || size == PageSize {
		return err
	}
	// No memory map to clip against: degrade to per-page fills so one
	// unmapped page no longer fails the whole multi-page fill.
	var firstErr error
	for off := uint64(0); off < size; off += PageSize {
		if perr := s.readRun(base+off, PageSize); perr != nil && firstErr == nil {
			firstErr = perr
		}
	}
	return firstErr
}

// readRun caches every page of a page-aligned run at the current generation.
// When the chain exposes a PageProvider, pages still shared with the CoW
// store are installed as zero-copy aliases — no read, no allocation, no link
// traffic — and only the gaps (privatized or store-less pages) are read.
// Caller holds s.mu.
func (s *Snapshot) readRun(base, size uint64) error {
	if s.provider == nil {
		return s.copyRun(base, size)
	}
	var firstErr error
	pending := uint64(0) // pages since pendBase awaiting a copy fill
	pendBase := base
	for off := uint64(0); off < size; off += PageSize {
		if data, ok := s.provider.PageData(base + off); ok && len(data) == PageSize {
			if pending > 0 {
				if err := s.copyRun(pendBase, pending*PageSize); err != nil && firstErr == nil {
					firstErr = err
				}
				pending = 0
			}
			s.pages[base+off] = &spage{
				data:    data,
				gen:     s.gen,
				changed: s.gen,
				aliased: true,
			}
			s.zeroCopy.Add(1)
			s.mZeroCopy.Inc()
			s.misses.Add(1)
			s.mMisses.Inc()
		} else {
			if pending == 0 {
				pendBase = base + off
			}
			pending++
		}
	}
	if pending > 0 {
		if err := s.copyRun(pendBase, pending*PageSize); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// copyRun issues one coalesced read of a page-aligned run and caches every
// page of it. The run buffer is retained as the pages' backing (one
// allocation per run, not per page), so it is deliberately not pooled.
// Caller holds s.mu.
func (s *Snapshot) copyRun(base, size uint64) error {
	run := make([]byte, size)
	if err := s.under.ReadMemory(base, run); err != nil {
		return err
	}
	s.mFills.Inc()
	for off := uint64(0); off < size; off += PageSize {
		s.pages[base+off] = &spage{
			data:    run[off : off+PageSize : off+PageSize],
			gen:     s.gen,
			changed: s.gen,
		}
		s.misses.Add(1)
		s.mMisses.Inc()
	}
	return nil
}

// LookupSymbol implements Target.
func (s *Snapshot) LookupSymbol(name string) (Symbol, bool) { return s.under.LookupSymbol(name) }

// SymbolAt implements Target.
func (s *Snapshot) SymbolAt(addr uint64) (string, bool) { return s.under.SymbolAt(addr) }

// Types implements Target.
func (s *Snapshot) Types() *ctypes.Registry { return s.under.Types() }

// Stats implements Target: logical reads as the extraction issued them
// (the underlying target's Stats count what actually crossed the link).
func (s *Snapshot) Stats() *Stats { return &s.stats }

// ClipMapped implements RangeProber when the underlying chain does.
func (s *Snapshot) ClipMapped(addr, size uint64) ([]Range, bool) {
	return ClipMapped(s.under, addr, size)
}

var (
	_ Target            = (*Snapshot)(nil)
	_ Prefetcher        = (*Snapshot)(nil)
	_ BatchPrefetcher   = (*Snapshot)(nil)
	_ obs.TracerCarrier = (*Snapshot)(nil)
)
