package target

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"visualinux/internal/ctypes"
	"visualinux/internal/obs"
)

// PageSize is the granularity of the snapshot read cache: 4 KiB, the guest
// page size, which also matches the simulated memory's mapping granularity
// (so a page is either fully readable or fully absent).
const PageSize = 4096

// Snapshot is a page-granular read-through cache over any Target, valid
// for the lifetime of one stop event: while the machine is stopped its
// memory cannot change, so every page needs at most one fetch. Call
// Invalidate when the target resumes.
//
// Layered over a Latency (or a real RSP link), a Snapshot converts the
// many small field reads of an extraction into a few page-sized
// transactions: cache hits cost zero modeled link time. Contiguous missing
// pages are fetched in one coalesced transaction, so Prefetch of a
// multi-page object costs one round trip, not one per page.
//
// A Snapshot is safe for concurrent readers (parallel pane extraction over
// one stop event).
type Snapshot struct {
	under Target
	stats Stats

	mu    sync.RWMutex
	pages map[uint64][]byte

	hits          atomic.Uint64 // page lookups served from cache
	misses        atomic.Uint64 // pages fetched from the underlying target
	invalidations atomic.Uint64 // Invalidate calls (stop-event boundaries)
	batchRuns     atomic.Uint64 // coalesced batch-prefetch fills issued

	// Observer counter handles (nil-safe when uninstrumented): the same
	// events as the atomic fields above, but aggregated process-wide so
	// every snapshot in every worker feeds one /debug/metrics view.
	mHits, mMisses, mFills, mInval, mBatchRuns *obs.Counter
}

// NewSnapshot wraps t with a fresh, empty cache.
func NewSnapshot(t Target) *Snapshot {
	return &Snapshot{under: t, pages: make(map[uint64][]byte)}
}

// Under returns the wrapped target (e.g. to read its link-level stats).
func (s *Snapshot) Under() Target { return s.under }

// Instrument mirrors the snapshot's cache events into the observer's
// shared counters (hit/miss/fill/invalidation series plus the derived
// hit-ratio gauge). Multiple snapshots may feed one observer; the series
// aggregate.
func (s *Snapshot) Instrument(o *obs.Observer) *Snapshot {
	if o != nil {
		s.mHits, s.mMisses, s.mFills, s.mInval = o.SnapHits, o.SnapMisses, o.SnapFills, o.SnapInvalidations
		s.mBatchRuns = o.BatchPrefetchRuns
	}
	return s
}

// Invalidate drops every cached page. Call on resume: the stop event the
// snapshot was valid for is over.
func (s *Snapshot) Invalidate() {
	s.mu.Lock()
	s.pages = make(map[uint64][]byte)
	s.mu.Unlock()
	s.invalidations.Add(1)
	s.mInval.Inc()
}

// CacheStats returns page-granular hit/miss counts.
func (s *Snapshot) CacheStats() (hits, misses uint64) {
	return s.hits.Load(), s.misses.Load()
}

// Invalidations reports how many times the cache has been dropped.
func (s *Snapshot) Invalidations() uint64 { return s.invalidations.Load() }

// BatchRuns reports how many coalesced batch-prefetch fills were issued.
func (s *Snapshot) BatchRuns() uint64 { return s.batchRuns.Load() }

// HitRatio reports the fraction of page lookups served from cache
// (0 when nothing has been looked up yet).
func (s *Snapshot) HitRatio() float64 {
	h, m := s.hits.Load(), s.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// ReadMemory implements Target, serving from cached pages and filling
// misses through the underlying target.
func (s *Snapshot) ReadMemory(addr uint64, buf []byte) error {
	s.stats.CountRead(len(buf))
	if len(buf) == 0 {
		return nil
	}
	if err := s.ensure(addr, uint64(len(buf))); err != nil {
		// A page in the range is unreadable. Degrade to a direct read of
		// exactly the requested range so error semantics match the
		// underlying target (partial ranges fail there too).
		return s.under.ReadMemory(addr, buf)
	}
	s.mu.RLock()
	resident := true
	for n := 0; n < len(buf) && resident; {
		cur := addr + uint64(n)
		p := s.pages[cur&^(PageSize-1)]
		if p == nil {
			resident = false // raced with Invalidate
			break
		}
		n += copy(buf[n:], p[cur&(PageSize-1):])
	}
	s.mu.RUnlock()
	if !resident {
		return s.under.ReadMemory(addr, buf)
	}
	return nil
}

// Prefetch implements Prefetcher: it pulls the page range covering
// [addr, addr+size) into the cache, coalescing adjacent missing pages into
// single large transactions. Errors are swallowed — unreadable stretches
// simply stay uncached and fail later at the precise read that needs them.
func (s *Snapshot) Prefetch(addr, size uint64) {
	if size == 0 {
		return
	}
	_ = s.ensure(addr, size)
}

// maxBatchRun bounds one coalesced batch-prefetch fill: merged element runs
// longer than this (large arrays, whole slabs) are split so a single fill
// never exceeds the link's appetite.
const maxBatchRun = 256 << 10

// PrefetchRanges implements BatchPrefetcher: the cross-element batch pass.
// Every range a container walk yielded is page-aligned, sorted, and merged —
// adjacent elements' page runs (array slots, contiguous slab objects) become
// single fills — and each merged run is then filled like Prefetch would,
// clipped to the target's memory map when it exposes one. One unmapped page
// inside a merged run therefore costs only itself, never the whole fill.
func (s *Snapshot) PrefetchRanges(ranges []Range) {
	type span struct{ first, last uint64 } // inclusive page bases
	spans := make([]span, 0, len(ranges))
	for _, r := range ranges {
		if r.Size == 0 {
			continue
		}
		if r.Addr+r.Size-1 < r.Addr {
			r.Size = -r.Addr // clamp a wrapping range at the top
		}
		spans = append(spans, span{r.Addr &^ (PageSize - 1), (r.Addr + r.Size - 1) &^ (PageSize - 1)})
	}
	if len(spans) == 0 {
		return
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].first < spans[j].first })
	merged := spans[:1]
	for _, sp := range spans[1:] {
		cur := &merged[len(merged)-1]
		if cur.last+PageSize > cur.last && sp.first <= cur.last+PageSize {
			if sp.last > cur.last {
				cur.last = sp.last
			}
		} else {
			merged = append(merged, sp)
		}
	}
	for _, sp := range merged {
		for base := sp.first; ; {
			end := sp.last
			if end-base >= maxBatchRun {
				end = base + maxBatchRun - PageSize
			}
			s.prefetchRun(base, end)
			if end == sp.last {
				break
			}
			base = end + PageSize
		}
	}
}

// prefetchRun is one batch fill of the pages [first, last]: residency is
// checked under the read lock, and only a run that actually misses counts as
// a batch run and reaches the link.
func (s *Snapshot) prefetchRun(first, last uint64) {
	s.mu.RLock()
	missing := false
	for base := first; ; base += PageSize {
		if _, ok := s.pages[base]; ok {
			s.hits.Add(1)
			s.mHits.Inc()
		} else {
			missing = true
		}
		if base == last {
			break
		}
	}
	s.mu.RUnlock()
	if !missing {
		return
	}
	s.batchRuns.Add(1)
	s.mBatchRuns.Inc()
	s.mu.Lock()
	_ = s.fillLocked(first, last)
	s.mu.Unlock()
}

// ensure makes every page covering [addr, addr+size) cache-resident,
// fetching runs of contiguous missing pages in one read each. Ranges that
// wrap past the top of the address space (a garbage or poisoned pointer fed
// to Prefetch) are clamped: without the clamp, last wraps below first and
// the page loops never terminate.
func (s *Snapshot) ensure(addr, size uint64) error {
	if size == 0 {
		return nil
	}
	if addr+size-1 < addr {
		size = -addr
	}
	first := addr &^ (PageSize - 1)
	last := (addr + size - 1) &^ (PageSize - 1)

	// Fast path: everything already resident.
	s.mu.RLock()
	missing := false
	for base := first; ; base += PageSize {
		if _, ok := s.pages[base]; ok {
			s.hits.Add(1)
			s.mHits.Inc()
		} else {
			missing = true
		}
		if base == last {
			break
		}
	}
	s.mu.RUnlock()
	if !missing {
		return nil
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fillLocked(first, last)
}

// fillLocked fetches every missing page in [first, last] (inclusive page
// bases), coalescing runs of contiguous missing pages into one read each.
// Caller holds s.mu.
func (s *Snapshot) fillLocked(first, last uint64) error {
	var firstErr error
	for base := first; ; base += PageSize {
		if _, ok := s.pages[base]; !ok {
			// Extend the run over every contiguous missing page.
			end := base
			for end != last {
				if _, ok := s.pages[end+PageSize]; ok {
					break
				}
				end += PageSize
			}
			if err := s.fillRun(base, end); err != nil && firstErr == nil {
				firstErr = err
			}
			base = end
		}
		if base >= last {
			break
		}
	}
	return firstErr
}

// fillRun reads the pages [base, end] (inclusive bases) into the cache.
// When the target chain exposes a memory map, the run is clipped to mapped
// ranges before any read is issued — unmapped stretches are skipped, not
// attempted — and an error is still reported so ReadMemory keeps its
// fail-on-unreadable contract. Without a map, a failed multi-page run is
// retried page by page so the mapped pages around a hole land in the cache
// anyway.
func (s *Snapshot) fillRun(base, end uint64) error {
	size := end - base + PageSize
	if clipped, ok := ClipMapped(s.under, base, size); ok {
		var firstErr error
		covered := uint64(0)
		for _, r := range clipped {
			// Defensive page alignment: the query is page-aligned, so a sane
			// prober answers in whole pages; re-align and clamp regardless.
			lo := r.Addr &^ (PageSize - 1)
			hi := (r.End() - 1) &^ (PageSize - 1)
			if lo < base {
				lo = base
			}
			if hi > end {
				hi = end
			}
			if lo > hi {
				continue
			}
			if err := s.readRun(lo, hi-lo+PageSize); err != nil && firstErr == nil {
				firstErr = err
			}
			covered += hi - lo + PageSize
		}
		if firstErr != nil {
			return firstErr
		}
		if covered < size {
			return fmt.Errorf("target: %d of %d bytes unmapped in fill %#x+%#x",
				size-covered, size, base, size)
		}
		return nil
	}
	err := s.readRun(base, size)
	if err == nil || size == PageSize {
		return err
	}
	// No memory map to clip against: degrade to per-page fills so one
	// unmapped page no longer fails the whole multi-page fill.
	var firstErr error
	for off := uint64(0); off < size; off += PageSize {
		if perr := s.readRun(base+off, PageSize); perr != nil && firstErr == nil {
			firstErr = perr
		}
	}
	return firstErr
}

// readRun issues one coalesced read of a page-aligned run and caches every
// page of it. Caller holds s.mu.
func (s *Snapshot) readRun(base, size uint64) error {
	run := make([]byte, size)
	if err := s.under.ReadMemory(base, run); err != nil {
		return err
	}
	s.mFills.Inc()
	for off := uint64(0); off < size; off += PageSize {
		s.pages[base+off] = run[off : off+PageSize : off+PageSize]
		s.misses.Add(1)
		s.mMisses.Inc()
	}
	return nil
}

// LookupSymbol implements Target.
func (s *Snapshot) LookupSymbol(name string) (Symbol, bool) { return s.under.LookupSymbol(name) }

// SymbolAt implements Target.
func (s *Snapshot) SymbolAt(addr uint64) (string, bool) { return s.under.SymbolAt(addr) }

// Types implements Target.
func (s *Snapshot) Types() *ctypes.Registry { return s.under.Types() }

// Stats implements Target: logical reads as the extraction issued them
// (the underlying target's Stats count what actually crossed the link).
func (s *Snapshot) Stats() *Stats { return &s.stats }

// ClipMapped implements RangeProber when the underlying chain does.
func (s *Snapshot) ClipMapped(addr, size uint64) ([]Range, bool) {
	return ClipMapped(s.under, addr, size)
}

var (
	_ Target          = (*Snapshot)(nil)
	_ Prefetcher      = (*Snapshot)(nil)
	_ BatchPrefetcher = (*Snapshot)(nil)
)
