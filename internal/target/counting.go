package target

import "visualinux/internal/ctypes"

// Counted forwards reads to an underlying target while keeping its own
// Stats. The Table 4 harness wraps the shared kernel target once per
// measurement, so concurrent extraction workers each get an isolated
// counter instead of racing to diff one shared Stats.
type Counted struct {
	under Target
	stats Stats
}

// WithStats returns a view of t with a fresh, independent Stats.
func WithStats(t Target) *Counted { return &Counted{under: t} }

// ReadMemory implements Target.
func (c *Counted) ReadMemory(addr uint64, buf []byte) error {
	c.stats.CountRead(len(buf))
	return c.under.ReadMemory(addr, buf)
}

// Prefetch implements Prefetcher when the underlying target does.
func (c *Counted) Prefetch(addr, size uint64) {
	if p, ok := c.under.(Prefetcher); ok {
		p.Prefetch(addr, size)
	}
}

// PrefetchRanges implements BatchPrefetcher when the underlying target does.
func (c *Counted) PrefetchRanges(ranges []Range) {
	if bp, ok := c.under.(BatchPrefetcher); ok {
		bp.PrefetchRanges(ranges)
	}
}

// ClipMapped implements RangeProber when the underlying target does.
func (c *Counted) ClipMapped(addr, size uint64) ([]Range, bool) {
	return ClipMapped(c.under, addr, size)
}

// HashBlocks implements PageHasher when the underlying target does. A
// served hash query is one stub-side metadata round trip.
func (c *Counted) HashBlocks(addr, size uint64) ([]uint64, bool) {
	hashes, ok := HashBlocks(c.under, addr, size)
	if ok {
		c.stats.HashChecks.Add(1)
	}
	return hashes, ok
}

// DirtySince implements DirtyTracker when the underlying target does.
func (c *Counted) DirtySince(mark uint64) ([]Range, uint64, bool) {
	ranges, next, ok := DirtySince(c.under, mark)
	if ok {
		c.stats.HashChecks.Add(1)
	}
	return ranges, next, ok
}

// Under returns the wrapped target.
func (c *Counted) Under() Target { return c.under }

// LookupSymbol implements Target.
func (c *Counted) LookupSymbol(name string) (Symbol, bool) { return c.under.LookupSymbol(name) }

// SymbolAt implements Target.
func (c *Counted) SymbolAt(addr uint64) (string, bool) { return c.under.SymbolAt(addr) }

// Types implements Target.
func (c *Counted) Types() *ctypes.Registry { return c.under.Types() }

// Stats implements Target.
func (c *Counted) Stats() *Stats { return &c.stats }

var _ Target = (*Counted)(nil)
