package target

import (
	"testing"

	"visualinux/internal/ctypes"
	"visualinux/internal/mem"
)

// holeFixture maps pages [base, base+2p) and [base+3p, base+4p), leaving
// page base+2p as an unmapped hole in the middle.
func holeFixture(t *testing.T) (*Sim, uint64) {
	t.Helper()
	m := mem.New()
	base := uint64(0x3000_0000)
	fill := func(addr, size uint64) {
		b := make([]byte, size)
		for i := range b {
			b[i] = byte(uint64(i) ^ addr>>12)
		}
		m.Write(addr, b)
	}
	fill(base, 2*PageSize)
	fill(base+3*PageSize, PageSize)
	return NewSim(m, ctypes.NewRegistry()), base
}

// TestEnsureOverflowClamp is the regression test for the ensure() hang: a
// range that wraps past the top of the address space (garbage pointer plus
// size overflowing 2^64) made `last` wrap below `first`, and the page loops
// never terminated. The clamp bounds the range at the top page instead.
func TestEnsureOverflowClamp(t *testing.T) {
	m := mem.New()
	top := ^uint64(PageSize - 1) // last page of the address space
	data := make([]byte, PageSize)
	for i := range data {
		data[i] = byte(i * 5)
	}
	m.Write(top, data)
	s := NewSim(m, ctypes.NewRegistry())
	snap := NewSnapshot(s)

	// Pointer near the top, size that wraps: must terminate (and cache the
	// clamped prefix), not spin through 2^52 page iterations.
	Prefetch(snap, top+PageSize-16, 0x100)
	if _, misses := snap.CacheStats(); misses != 1 {
		t.Fatalf("misses = %d, want the top page cached once", misses)
	}
	var b8 [8]byte
	if err := snap.ReadMemory(top, b8[:]); err != nil {
		t.Fatal(err)
	}
	if reads, _ := s.Stats().Snapshot(); reads != 1 {
		t.Fatalf("underlying reads = %d, want 1 (clamped prefetch then hit)", reads)
	}

	// The batch path clamps too.
	snap2 := NewSnapshot(s)
	snap2.PrefetchRanges([]Range{{Addr: top + PageSize - 16, Size: 0x100}})
	if _, misses := snap2.CacheStats(); misses != 1 {
		t.Fatalf("batch misses = %d, want 1", misses)
	}
}

// TestBatchPrefetchClipsUnmappedHole checks the headline batch behavior:
// one merged multi-page run with an unmapped page inside it fills every
// mapped page around the hole — the hole costs only itself, not the fill.
func TestBatchPrefetchClipsUnmappedHole(t *testing.T) {
	s, base := holeFixture(t)
	snap := NewSnapshot(s)

	snap.PrefetchRanges([]Range{{Addr: base, Size: 4 * PageSize}})
	if runs := snap.BatchRuns(); runs != 1 {
		t.Fatalf("batch runs = %d, want 1 merged run", runs)
	}
	// The sim exposes its memory map, so the fill is clipped into the two
	// mapped islands: exactly two underlying reads, hole never attempted.
	reads, bytes := s.Stats().Snapshot()
	if reads != 2 {
		t.Fatalf("underlying reads = %d, want 2 clipped island fills", reads)
	}
	if bytes != 3*PageSize {
		t.Fatalf("underlying bytes = %d, want %d (mapped pages only)", bytes, 3*PageSize)
	}

	// Mapped pages are now resident: reads are cache hits.
	var b8 [8]byte
	for _, addr := range []uint64{base, base + PageSize, base + 3*PageSize} {
		if err := snap.ReadMemory(addr, b8[:]); err != nil {
			t.Fatalf("read %#x after batch prefetch: %v", addr, err)
		}
	}
	if r, _ := s.Stats().Snapshot(); r != reads {
		t.Fatalf("post-prefetch reads leaked to underlying: %d -> %d", reads, r)
	}
	// The hole still errors precisely, like the raw target.
	if err := snap.ReadMemory(base+2*PageSize, b8[:]); err == nil {
		t.Fatal("read inside the hole succeeded")
	}
}

// TestBatchPrefetchMergesAdjacentElements checks that element-sized ranges
// on neighboring pages merge into one coalesced fill — the cross-element
// win: N small element reads become one link transaction.
func TestBatchPrefetchMergesAdjacentElements(t *testing.T) {
	m := mem.New()
	base := uint64(0x5000_0000)
	m.Write(base, make([]byte, 4*PageSize))
	s := NewSim(m, ctypes.NewRegistry())
	snap := NewSnapshot(s)

	// Four 64-byte "elements", one per page: separately they would cost four
	// fills; merged (each within one page-step of the next) they cost one.
	var ranges []Range
	for i := uint64(0); i < 4; i++ {
		ranges = append(ranges, Range{Addr: base + i*PageSize + 128, Size: 64})
	}
	snap.PrefetchRanges(ranges)
	if runs := snap.BatchRuns(); runs != 1 {
		t.Fatalf("batch runs = %d, want 1", runs)
	}
	reads, bytes := s.Stats().Snapshot()
	if reads != 1 {
		t.Fatalf("underlying reads = %d, want 1 coalesced fill", reads)
	}
	if bytes != 4*PageSize {
		t.Fatalf("underlying bytes = %d, want %d", bytes, 4*PageSize)
	}

	// Resident ranges cost nothing on a second pass: no new batch run.
	snap.PrefetchRanges(ranges)
	if runs := snap.BatchRuns(); runs != 1 {
		t.Fatalf("resident batch re-run issued a fill (runs = %d)", runs)
	}
}

// TestSimClipMapped pins the prober semantics the batch path relies on.
func TestSimClipMapped(t *testing.T) {
	s, base := holeFixture(t)

	ranges, ok := s.ClipMapped(base+PageSize/2, 3*PageSize)
	if !ok {
		t.Fatal("sim should answer ClipMapped")
	}
	want := []Range{
		{Addr: base + PageSize/2, Size: PageSize + PageSize/2},
		{Addr: base + 3*PageSize, Size: PageSize / 2},
	}
	if len(ranges) != len(want) {
		t.Fatalf("clip = %v, want %v", ranges, want)
	}
	for i := range want {
		if ranges[i] != want[i] {
			t.Fatalf("clip[%d] = %+v, want %+v", i, ranges[i], want[i])
		}
	}
	// Fully unmapped span: no ranges, still ok.
	if r, ok := s.ClipMapped(0xdead_0000_0000, PageSize); !ok || len(r) != 0 {
		t.Fatalf("unmapped clip = %v, %v", r, ok)
	}
}
