package target

// Sub-page content hashing. A stale snapshot page is revalidated by comparing
// 256 B block hashes against the stub instead of refetching 4 KiB: on a
// serial-class link the hash exchange is ~10x cheaper than the page, and when
// only a few blocks differ (one flag flipped in a pipe_buffer) the refetch is
// sized to the dirty blocks, not the page. 256 B is the ROADMAP's adaptive
// granularity for sparse structures: a per-CPU array that dirties one slot
// re-fetches one block.

// SubPage is the hash/refetch granularity inside a snapshot page.
const SubPage = 256

// BlocksPerPage is how many SubPage blocks one snapshot page holds.
const BlocksPerPage = PageSize / SubPage

// FNV-1a 64-bit parameters.
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// HashBlock is FNV-1a 64 over one block's bytes. Block 0 of guest memory is
// never all-zero-hash-ambiguous: FNV of any input is well-defined and the
// same function runs on both ends of the link, so equality of hashes is
// equality of content for revalidation purposes.
func HashBlock(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// HashSum extends an FNV-1a 64 running hash h with b. Pass fnv basis via
// NewHashSum for the first call.
func HashSum(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// NewHashSum returns the FNV-1a 64 offset basis for use with HashSum.
func NewHashSum() uint64 { return fnvOffset64 }

// PageHasher is implemented by targets that can hash guest memory on the
// stub side: SubPage-granular FNV-1a 64 hashes of [addr, addr+size), which
// must be SubPage-aligned. ok=false means the capability is absent (then the
// snapshot falls back to refetching whole pages).
type PageHasher interface {
	HashBlocks(addr, size uint64) (hashes []uint64, ok bool)
}

// DirtyTracker is implemented by targets that journal guest writes: the
// ranges mutated since mark (a cursor from a previous call), the new cursor,
// and whether the journal could answer. A mark beyond the current cursor —
// conventionally ^uint64(0) — is clamped and returns no ranges with a fresh
// cursor, which is how a consumer starts tracking. ok=false means history
// was lost (journal overflow, stub without the annex) and the caller must
// fall back to hash revalidation.
type DirtyTracker interface {
	DirtySince(mark uint64) (ranges []Range, next uint64, ok bool)
}

// HashBlocks asks t (or, for wrappers that forward it, the chain under t)
// for stub-side block hashes. ok=false when nothing in the chain hashes.
func HashBlocks(t Target, addr, size uint64) ([]uint64, bool) {
	if h, ok := t.(PageHasher); ok {
		return h.HashBlocks(addr, size)
	}
	return nil, false
}

// DirtySince asks t for the write journal since mark. ok=false when nothing
// in the chain tracks writes or history was lost.
func DirtySince(t Target, mark uint64) ([]Range, uint64, bool) {
	if d, ok := t.(DirtyTracker); ok {
		return d.DirtySince(mark)
	}
	return nil, 0, false
}
