// Package coredump implements post-mortem debugging, the third attach mode
// next to live (in-process) and remote (GDB RSP): the simulated kernel's
// memory image and symbol table serialize to a dump file, and a dump loads
// back into a read-only target — the moral equivalent of inspecting a
// kdump/vmcore with crash(8), which the paper lists among the state
// analysis tools Visualinux complements.
//
// Format (little-endian):
//
//	magic   "VLCORE01"
//	u32     segment count
//	per segment: u64 addr, u64 len, raw bytes
//	u32     symbol count
//	per symbol:  u16 name len, name, u64 addr, u16 type-name len, type name
//
// Types are NOT serialized: like GDB loading vmlinux for a vmcore, the
// reader reconstructs the type registry locally and re-binds symbols to it
// by name.
package coredump

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"visualinux/internal/ctypes"
	"visualinux/internal/mem"
	"visualinux/internal/target"
)

var magic = [8]byte{'V', 'L', 'C', 'O', 'R', 'E', '0', '1'}

// Dump serializes the target's mapped memory and symbols to w. Contiguous
// pages coalesce into single segments.
func Dump(t *target.Sim, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}

	// Coalesce mapped pages into segments.
	pages := t.Mem.MappedRanges()
	type seg struct{ addr, length uint64 }
	var segs []seg
	for _, base := range pages {
		if n := len(segs); n > 0 && segs[n-1].addr+segs[n-1].length == base {
			segs[n-1].length += mem.PageSize
		} else {
			segs = append(segs, seg{addr: base, length: mem.PageSize})
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(segs))); err != nil {
		return err
	}
	buf := make([]byte, mem.PageSize)
	for _, s := range segs {
		if err := binary.Write(bw, binary.LittleEndian, s.addr); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, s.length); err != nil {
			return err
		}
		for off := uint64(0); off < s.length; off += mem.PageSize {
			if err := t.Mem.Read(s.addr+off, buf); err != nil {
				return fmt.Errorf("coredump: reading %#x: %w", s.addr+off, err)
			}
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}

	syms := t.Symbols()
	sort.Slice(syms, func(i, j int) bool { return syms[i].Name < syms[j].Name })
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(syms))); err != nil {
		return err
	}
	for _, s := range syms {
		typeName := ""
		if s.Type != nil {
			typeName = s.Type.String()
		}
		if err := writeString(bw, s.Name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, s.Addr); err != nil {
			return err
		}
		if err := writeString(bw, typeName); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a dump into a fresh read-only target, binding symbols against
// reg (the locally reconstructed "vmlinux" types). Symbols whose type
// names don't resolve keep a nil type, like stripped symbols.
func Load(r io.Reader, reg *ctypes.Registry) (*target.Sim, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("coredump: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("coredump: bad magic %q", m[:])
	}
	memory := mem.New()
	var nsegs uint32
	if err := binary.Read(br, binary.LittleEndian, &nsegs); err != nil {
		return nil, err
	}
	if nsegs > 1<<20 {
		return nil, fmt.Errorf("coredump: implausible segment count %d", nsegs)
	}
	buf := make([]byte, mem.PageSize)
	for i := uint32(0); i < nsegs; i++ {
		var addr, length uint64
		if err := binary.Read(br, binary.LittleEndian, &addr); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &length); err != nil {
			return nil, err
		}
		if length%mem.PageSize != 0 {
			return nil, fmt.Errorf("coredump: segment %d length %#x not page-aligned", i, length)
		}
		for off := uint64(0); off < length; off += mem.PageSize {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("coredump: segment %d data: %w", i, err)
			}
			memory.Write(addr+off, buf)
		}
	}
	tgt := target.NewSim(memory, reg)
	var nsyms uint32
	if err := binary.Read(br, binary.LittleEndian, &nsyms); err != nil {
		return nil, err
	}
	if nsyms > 1<<24 {
		return nil, fmt.Errorf("coredump: implausible symbol count %d", nsyms)
	}
	for i := uint32(0); i < nsyms; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		var addr uint64
		if err := binary.Read(br, binary.LittleEndian, &addr); err != nil {
			return nil, err
		}
		typeName, err := readString(br)
		if err != nil {
			return nil, err
		}
		var typ *ctypes.Type
		if typeName != "" {
			if t, ok := resolveTypeSpelling(reg, typeName); ok {
				typ = t
			} else if typeName == "func" {
				typ = ctypes.FuncType
			}
		}
		tgt.AddSymbol(name, addr, typ)
	}
	return tgt, nil
}

// resolveTypeSpelling parses the String() spelling of a type back into the
// registry: "task_struct", "struct rq[2]", "u64 *", "list_head".
func resolveTypeSpelling(reg *ctypes.Registry, s string) (*ctypes.Type, bool) {
	// Array suffix: "...[N]"
	if n := len(s); n > 0 && s[n-1] == ']' {
		open := -1
		for i := n - 2; i >= 0; i-- {
			if s[i] == '[' {
				open = i
				break
			}
		}
		if open > 0 {
			var count uint64
			if _, err := fmt.Sscanf(s[open+1:n-1], "%d", &count); err == nil {
				if elem, ok := resolveTypeSpelling(reg, s[:open]); ok {
					return elem.ArrayOf(count), true
				}
			}
		}
		return nil, false
	}
	return reg.Lookup(s)
}

func writeString(w io.Writer, s string) error {
	if len(s) > 0xFFFF {
		return fmt.Errorf("coredump: string too long (%d)", len(s))
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w.(io.Writer), s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
