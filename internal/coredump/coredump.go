// Package coredump implements post-mortem debugging, the third attach mode
// next to live (in-process) and remote (GDB RSP): the simulated kernel's
// memory image and symbol table serialize to a dump file, and a dump loads
// back into a read-only target — the moral equivalent of inspecting a
// kdump/vmcore with crash(8), which the paper lists among the state
// analysis tools Visualinux complements.
//
// Format (little-endian):
//
//	magic   "VLCORE01"
//	u32     segment count
//	per segment: u64 addr, u64 len, raw bytes
//	u32     symbol count
//	per symbol:  u16 name len, name, u64 addr, u16 type-name len, type name
//
// Types are NOT serialized: like GDB loading vmlinux for a vmcore, the
// reader reconstructs the type registry locally and re-binds symbols to it
// by name.
//
// Every count and length in the wire format is attacker-controlled, so Load
// validates all of them before allocating or looping: segment counts and
// total image bytes are capped, segment extents must be page-aligned and
// must not wrap the address space, and truncation anywhere mid-structure is
// an error, not a silent partial parse. All such failures wrap ErrCorrupt.
package coredump

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"visualinux/internal/ctypes"
	"visualinux/internal/mem"
	"visualinux/internal/target"
)

var magic = [8]byte{'V', 'L', 'C', 'O', 'R', 'E', '0', '1'}

// ErrCorrupt is wrapped by every Load failure caused by the dump itself —
// bad magic, implausible counts, unaligned or overflowing segments,
// truncation, trailing garbage. Callers distinguish "bad file" from I/O
// errors with errors.Is(err, ErrCorrupt).
var ErrCorrupt = errors.New("corrupt core dump")

// Wire-format sanity ceilings. The simulated kernels this package dumps are
// a few hundred KiB; the caps leave three orders of magnitude of headroom
// while keeping a hostile header from driving unbounded loops or
// allocations.
const (
	// MaxSegments bounds the u32 segment count.
	MaxSegments = 1 << 16
	// MaxImageBytes bounds the sum of all segment lengths (1 GiB).
	MaxImageBytes = 1 << 30
	// MaxSymbols bounds the u32 symbol count.
	MaxSymbols = 1 << 20
)

// Dump serializes the target's mapped memory and symbols to w. Contiguous
// pages coalesce into single segments.
//
// Dump is strictly read-only against the image: shared CoW pages are
// streamed straight from the page store via PageData (no un-aliasing, no
// private copies), and only private pages go through Mem.Read. A released
// ("zombie-readable") forked image still dumps its shared pages.
func Dump(t *target.Sim, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}

	// Coalesce mapped pages into segments.
	pages := t.Mem.MappedRanges()
	type seg struct{ addr, length uint64 }
	var segs []seg
	for _, base := range pages {
		if n := len(segs); n > 0 && segs[n-1].addr+segs[n-1].length == base {
			segs[n-1].length += mem.PageSize
		} else {
			segs = append(segs, seg{addr: base, length: mem.PageSize})
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(segs))); err != nil {
		return err
	}
	buf := make([]byte, mem.PageSize)
	for _, s := range segs {
		if err := binary.Write(bw, binary.LittleEndian, s.addr); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, s.length); err != nil {
			return err
		}
		for off := uint64(0); off < s.length; off += mem.PageSize {
			page := buf
			if data, ok := t.Mem.PageData(s.addr + off); ok {
				// Shared store page: alias the immutable backing directly.
				page = data
			} else if err := t.Mem.Read(s.addr+off, buf); err != nil {
				return fmt.Errorf("coredump: reading %#x: %w", s.addr+off, err)
			}
			if _, err := bw.Write(page); err != nil {
				return err
			}
		}
	}

	syms := t.Symbols()
	sort.Slice(syms, func(i, j int) bool { return syms[i].Name < syms[j].Name })
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(syms))); err != nil {
		return err
	}
	for _, s := range syms {
		typeName := ""
		if s.Type != nil {
			typeName = s.Type.String()
		}
		if err := writeString(bw, s.Name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, s.Addr); err != nil {
			return err
		}
		if err := writeString(bw, typeName); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// corruptf builds a Load error that wraps ErrCorrupt with context.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("coredump: "+format+": %w", append(args, ErrCorrupt)...)
}

// readFull reads exactly len(buf) bytes, mapping any shortfall (EOF,
// unexpected EOF) to a corrupt-dump error naming what was being read.
func readFull(r io.Reader, buf []byte, what string) error {
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return corruptf("truncated %s", what)
		}
		return fmt.Errorf("coredump: reading %s: %w", what, err)
	}
	return nil
}

func readU16(r io.Reader, what string) (uint16, error) {
	var b [2]byte
	if err := readFull(r, b[:], what); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

func readU32(r io.Reader, what string) (uint32, error) {
	var b [4]byte
	if err := readFull(r, b[:], what); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func readU64(r io.Reader, what string) (uint64, error) {
	var b [8]byte
	if err := readFull(r, b[:], what); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// Load reads a dump into a fresh read-only target, binding symbols against
// reg (the locally reconstructed "vmlinux" types). Symbols whose type
// names don't resolve keep a nil type, like stripped symbols.
//
// Load never trusts a wire-controlled count or length: see ErrCorrupt and
// the Max* caps. A structurally valid prefix followed by trailing garbage
// is also rejected — a dump is a complete artifact, not a stream.
func Load(r io.Reader, reg *ctypes.Registry) (*target.Sim, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if err := readFull(br, m[:], "magic"); err != nil {
		return nil, err
	}
	if m != magic {
		return nil, corruptf("bad magic %q", m[:])
	}
	memory := mem.New()
	nsegs, err := readU32(br, "segment count")
	if err != nil {
		return nil, err
	}
	if nsegs > MaxSegments {
		return nil, corruptf("implausible segment count %d (max %d)", nsegs, MaxSegments)
	}
	var total uint64
	buf := make([]byte, mem.PageSize)
	for i := uint32(0); i < nsegs; i++ {
		addr, err := readU64(br, fmt.Sprintf("segment %d header", i))
		if err != nil {
			return nil, err
		}
		length, err := readU64(br, fmt.Sprintf("segment %d header", i))
		if err != nil {
			return nil, err
		}
		if length == 0 {
			return nil, corruptf("segment %d has zero length", i)
		}
		if length%mem.PageSize != 0 {
			return nil, corruptf("segment %d length %#x not page-aligned", i, length)
		}
		if addr%mem.PageSize != 0 {
			return nil, corruptf("segment %d addr %#x not page-aligned", i, addr)
		}
		if addr+length < addr {
			return nil, corruptf("segment %d [%#x,+%#x) wraps the address space", i, addr, length)
		}
		total += length
		if total > MaxImageBytes {
			return nil, corruptf("image exceeds %d bytes at segment %d", MaxImageBytes, i)
		}
		for off := uint64(0); off < length; off += mem.PageSize {
			if err := readFull(br, buf, fmt.Sprintf("segment %d data", i)); err != nil {
				return nil, err
			}
			memory.Write(addr+off, buf)
		}
	}
	tgt := target.NewSim(memory, reg)
	nsyms, err := readU32(br, "symbol count")
	if err != nil {
		return nil, err
	}
	if nsyms > MaxSymbols {
		return nil, corruptf("implausible symbol count %d (max %d)", nsyms, MaxSymbols)
	}
	for i := uint32(0); i < nsyms; i++ {
		name, err := readString(br, fmt.Sprintf("symbol %d name", i))
		if err != nil {
			return nil, err
		}
		if name == "" {
			return nil, corruptf("symbol %d has empty name", i)
		}
		addr, err := readU64(br, fmt.Sprintf("symbol %d addr", i))
		if err != nil {
			return nil, err
		}
		typeName, err := readString(br, fmt.Sprintf("symbol %d type name", i))
		if err != nil {
			return nil, err
		}
		var typ *ctypes.Type
		if typeName != "" {
			if t, ok := resolveTypeSpelling(reg, typeName); ok {
				typ = t
			} else if typeName == "func" {
				typ = ctypes.FuncType
			}
		}
		tgt.AddSymbol(name, addr, typ)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		if err != nil {
			return nil, fmt.Errorf("coredump: after symbol table: %w", err)
		}
		return nil, corruptf("trailing garbage after symbol table")
	}
	return tgt, nil
}

// resolveTypeSpelling parses the String() spelling of a type back into the
// registry: "task_struct", "struct rq[2]", "u64 *", "list_head".
func resolveTypeSpelling(reg *ctypes.Registry, s string) (*ctypes.Type, bool) {
	// Array suffix: "...[N]"
	if n := len(s); n > 0 && s[n-1] == ']' {
		open := -1
		for i := n - 2; i >= 0; i-- {
			if s[i] == '[' {
				open = i
				break
			}
		}
		if open > 0 {
			var count uint64
			if _, err := fmt.Sscanf(s[open+1:n-1], "%d", &count); err == nil {
				if elem, ok := resolveTypeSpelling(reg, s[:open]); ok {
					return elem.ArrayOf(count), true
				}
			}
		}
		return nil, false
	}
	return reg.Lookup(s)
}

func writeString(w io.Writer, s string) error {
	if len(s) > 0xFFFF {
		return fmt.Errorf("coredump: string too long (%d)", len(s))
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w.(io.Writer), s)
	return err
}

func readString(r io.Reader, what string) (string, error) {
	n, err := readU16(r, what+" length")
	if err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if err := readFull(r, buf, what); err != nil {
		return "", err
	}
	return string(buf), nil
}
