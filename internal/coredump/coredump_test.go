package coredump_test

import (
	"bytes"
	"strings"
	"testing"

	"visualinux/internal/core"
	"visualinux/internal/coredump"
	"visualinux/internal/ctypes"
	"visualinux/internal/kernelsim"
	"visualinux/internal/target"
	"visualinux/internal/vclstdlib"
)

func dumpAndLoad(t *testing.T, k *kernelsim.Kernel) *target.Sim {
	t.Helper()
	var buf bytes.Buffer
	if err := coredump.Dump(k.Target(), &buf); err != nil {
		t.Fatalf("dump: %v", err)
	}
	// Reconstruct types locally, like loading vmlinux against a vmcore.
	reg := kernelsim.RegisterTypes(ctypes.NewRegistry())
	tgt, err := coredump.Load(bytes.NewReader(buf.Bytes()), reg)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return tgt
}

func TestRoundtripMemoryAndSymbols(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	tgt := dumpAndLoad(t, k)

	// Memory identical at a few probe points.
	for _, probe := range []uint64{k.InitTask.Addr, k.SharedPage.Addr, k.StackRotNode.Addr} {
		want, err := target.ReadU64(k.Target(), probe)
		if err != nil {
			t.Fatal(err)
		}
		got, err := target.ReadU64(tgt, probe)
		if err != nil {
			t.Fatalf("probe %#x: %v", probe, err)
		}
		if got != want {
			t.Errorf("probe %#x: %#x != %#x", probe, got, want)
		}
	}
	// Symbols rebound with types.
	sym, ok := tgt.LookupSymbol("init_task")
	if !ok {
		t.Fatal("init_task lost")
	}
	if sym.Type == nil || sym.Type.Strip().Name != "task_struct" {
		t.Errorf("init_task type = %v", sym.Type)
	}
	// Array-typed symbols ("struct rq[2]") reparse.
	rqs, ok := tgt.LookupSymbol("runqueues")
	if !ok || rqs.Type == nil || rqs.Type.Strip().Kind != ctypes.KindArray {
		t.Errorf("runqueues type = %v", rqs.Type)
	}
	// Function symbols keep reverse lookup.
	fn, ok := tgt.LookupSymbol("mt_free_rcu")
	if !ok {
		t.Fatal("function symbol lost")
	}
	if name, ok := tgt.SymbolAt(fn.Addr); !ok || name != "mt_free_rcu" {
		t.Errorf("reverse lookup = %q", name)
	}
}

// TestPostMortemDebugging: a full figure extraction against the dump must
// match the live extraction — the crash(8) workflow.
func TestPostMortemDebugging(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	tgt := dumpAndLoad(t, k)

	fig, _ := vclstdlib.FigureByID("9-2")
	live := core.SessionOver(k, k.Target())
	pl, err := live.VPlot("live", fig.Program)
	if err != nil {
		t.Fatal(err)
	}
	post := core.SessionOver(k, tgt)
	pp, err := post.VPlot("postmortem", fig.Program)
	if err != nil {
		t.Fatalf("post-mortem extraction: %v", err)
	}
	if len(pl.Graph.Boxes) != len(pp.Graph.Boxes) {
		t.Fatalf("box counts: live %d, post-mortem %d", len(pl.Graph.Boxes), len(pp.Graph.Boxes))
	}
	for _, id := range pl.Graph.Order {
		lb := pl.Graph.Boxes[id]
		pb, ok := pp.Graph.Get(id)
		if !ok {
			t.Fatalf("box %s missing post-mortem", id)
		}
		for _, vn := range lb.ViewSeq {
			li, pi := lb.Views[vn].Items, pb.Views[vn].Items
			for i := range li {
				if li[i].Value != pi[i].Value {
					t.Errorf("%s.%s: %q != %q", id, li[i].Name, pi[i].Value, li[i].Value)
				}
			}
		}
	}
}

func TestCorruptDumps(t *testing.T) {
	reg := kernelsim.RegisterTypes(ctypes.NewRegistry())
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOTACORE falafel"),
		"truncated": append([]byte("VLCORE01"), 0xFF, 0xFF, 0xFF, 0x00),
	}
	for name, data := range cases {
		if _, err := coredump.Load(bytes.NewReader(data), reg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDumpDeterministic(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	var a, b bytes.Buffer
	if err := coredump.Dump(k.Target(), &a); err != nil {
		t.Fatal(err)
	}
	if err := coredump.Dump(k.Target(), &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("dump not deterministic")
	}
	if a.Len() < 100*1024 {
		t.Errorf("dump suspiciously small: %d bytes", a.Len())
	}
	// Header sanity.
	if !strings.HasPrefix(a.String(), "VLCORE01") {
		t.Error("bad header")
	}
}
