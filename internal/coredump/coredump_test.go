package coredump_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"visualinux/internal/core"
	"visualinux/internal/coredump"
	"visualinux/internal/ctypes"
	"visualinux/internal/kernelsim"
	"visualinux/internal/target"
	"visualinux/internal/vclstdlib"
)

func dumpAndLoad(t *testing.T, k *kernelsim.Kernel) *target.Sim {
	t.Helper()
	var buf bytes.Buffer
	if err := coredump.Dump(k.Target(), &buf); err != nil {
		t.Fatalf("dump: %v", err)
	}
	// Reconstruct types locally, like loading vmlinux against a vmcore.
	reg := kernelsim.RegisterTypes(ctypes.NewRegistry())
	tgt, err := coredump.Load(bytes.NewReader(buf.Bytes()), reg)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return tgt
}

func TestRoundtripMemoryAndSymbols(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	tgt := dumpAndLoad(t, k)

	// Memory identical at a few probe points.
	for _, probe := range []uint64{k.InitTask.Addr, k.SharedPage.Addr, k.StackRotNode.Addr} {
		want, err := target.ReadU64(k.Target(), probe)
		if err != nil {
			t.Fatal(err)
		}
		got, err := target.ReadU64(tgt, probe)
		if err != nil {
			t.Fatalf("probe %#x: %v", probe, err)
		}
		if got != want {
			t.Errorf("probe %#x: %#x != %#x", probe, got, want)
		}
	}
	// Symbols rebound with types.
	sym, ok := tgt.LookupSymbol("init_task")
	if !ok {
		t.Fatal("init_task lost")
	}
	if sym.Type == nil || sym.Type.Strip().Name != "task_struct" {
		t.Errorf("init_task type = %v", sym.Type)
	}
	// Array-typed symbols ("struct rq[2]") reparse.
	rqs, ok := tgt.LookupSymbol("runqueues")
	if !ok || rqs.Type == nil || rqs.Type.Strip().Kind != ctypes.KindArray {
		t.Errorf("runqueues type = %v", rqs.Type)
	}
	// Function symbols keep reverse lookup.
	fn, ok := tgt.LookupSymbol("mt_free_rcu")
	if !ok {
		t.Fatal("function symbol lost")
	}
	if name, ok := tgt.SymbolAt(fn.Addr); !ok || name != "mt_free_rcu" {
		t.Errorf("reverse lookup = %q", name)
	}
}

// TestPostMortemDebugging: a full figure extraction against the dump must
// match the live extraction — the crash(8) workflow.
func TestPostMortemDebugging(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	tgt := dumpAndLoad(t, k)

	fig, _ := vclstdlib.FigureByID("9-2")
	live := core.SessionOver(k, k.Target())
	pl, err := live.VPlot("live", fig.Program)
	if err != nil {
		t.Fatal(err)
	}
	post := core.SessionOver(k, tgt)
	pp, err := post.VPlot("postmortem", fig.Program)
	if err != nil {
		t.Fatalf("post-mortem extraction: %v", err)
	}
	if len(pl.Graph.Boxes) != len(pp.Graph.Boxes) {
		t.Fatalf("box counts: live %d, post-mortem %d", len(pl.Graph.Boxes), len(pp.Graph.Boxes))
	}
	for _, id := range pl.Graph.Order {
		lb := pl.Graph.Boxes[id]
		pb, ok := pp.Graph.Get(id)
		if !ok {
			t.Fatalf("box %s missing post-mortem", id)
		}
		for _, vn := range lb.ViewSeq {
			li, pi := lb.Views[vn].Items, pb.Views[vn].Items
			for i := range li {
				if li[i].Value != pi[i].Value {
					t.Errorf("%s.%s: %q != %q", id, li[i].Name, pi[i].Value, li[i].Value)
				}
			}
		}
	}
}

// dump-builder helpers for corrupt-input fixtures: hand-assemble wire
// structures so each case controls exactly one field.
func le16(v uint16) []byte { return []byte{byte(v), byte(v >> 8)} }
func le32(v uint32) []byte { return []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)} }
func le64(v uint64) []byte {
	return append(le32(uint32(v)), le32(uint32(v>>32))...)
}

// miniDump builds "VLCORE01" + one page-sized segment at 0x1000 + the given
// symbol-table tail (nil means a valid empty table).
func miniDump(tail []byte) []byte {
	d := []byte("VLCORE01")
	d = append(d, le32(1)...)      // 1 segment
	d = append(d, le64(0x1000)...) // addr
	d = append(d, le64(0x1000)...) // length: one page
	d = append(d, make([]byte, 0x1000)...)
	if tail == nil {
		tail = le32(0) // 0 symbols
	}
	return append(d, tail...)
}

// TestCorruptDumps: every wire-controlled count and length abused in turn.
// Each fixture must be rejected with a typed error (errors.Is ErrCorrupt),
// without panicking and without attempting the implied giant allocation.
func TestCorruptDumps(t *testing.T) {
	reg := kernelsim.RegisterTypes(ctypes.NewRegistry())
	seg := func(addr, length uint64) []byte {
		d := []byte("VLCORE01")
		d = append(d, le32(1)...)
		d = append(d, le64(addr)...)
		d = append(d, le64(length)...)
		return d
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("NOTACORE falafel")},
		{"truncated segment count", append([]byte("VLCORE01"), 0xFF, 0xFF)},
		{"huge segment count", append([]byte("VLCORE01"), le32(0xFFFFFFFF)...)},
		{"truncated segment header", append(append([]byte("VLCORE01"), le32(1)...), le64(0x1000)...)},
		{"huge segment length", append(seg(0x1000, 1<<40), make([]byte, 0x1000)...)},
		{"zero segment length", seg(0x1000, 0)},
		{"unaligned segment length", seg(0x1000, 0x1001)},
		{"unaligned segment addr", seg(0x1001, 0x1000)},
		{"segment wraps address space", seg(^uint64(0)&^uint64(0xFFF), 0x2000)},
		{"truncated segment data", append(seg(0x1000, 0x1000), make([]byte, 100)...)},
		{"truncated symbol count", miniDump(le16(0))},
		{"huge symbol count", miniDump(le32(0xFFFFFFFF))},
		{"symbol name overruns reader", miniDump(append(le32(1), append(le16(0xFFFF), 'a', 'b')...))},
		{"empty symbol name", miniDump(append(le32(1), append(le16(0), append(le64(0x1000), le16(0)...)...)...))},
		{"truncated symbol addr", miniDump(append(le32(1), append(le16(1), 'x', 0, 0)...))},
		{"truncated symbol type name", miniDump(append(le32(1), append(le16(1), append([]byte{'x'}, le64(0x1000)...)...)...))},
		{"trailing garbage", miniDump(append(le32(0), "extra"...))},
	}
	for _, tc := range cases {
		_, err := coredump.Load(bytes.NewReader(tc.data), reg)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !errors.Is(err, coredump.ErrCorrupt) {
			t.Errorf("%s: error %v not typed ErrCorrupt", tc.name, err)
		}
	}
}

// TestCorruptDumpsOnRealImage mutates a genuine dump in place — the header
// fields of a real image must be just as guarded as hand-built ones.
func TestCorruptDumpsOnRealImage(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	var buf bytes.Buffer
	if err := coredump.Dump(k.Target(), &buf); err != nil {
		t.Fatal(err)
	}
	reg := kernelsim.RegisterTypes(ctypes.NewRegistry())
	mutate := func(name string, f func(d []byte) []byte) {
		d := f(append([]byte(nil), buf.Bytes()...))
		if _, err := coredump.Load(bytes.NewReader(d), reg); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !errors.Is(err, coredump.ErrCorrupt) {
			t.Errorf("%s: error %v not typed ErrCorrupt", name, err)
		}
	}
	mutate("segment count inflated", func(d []byte) []byte {
		copy(d[8:12], le32(0xFFFFFFFF))
		return d
	})
	mutate("first segment length inflated", func(d []byte) []byte {
		copy(d[20:28], le64(1<<40))
		return d
	})
	mutate("truncated mid-image", func(d []byte) []byte { return d[:len(d)/2] })
	mutate("trailing garbage", func(d []byte) []byte { return append(d, 0xAA) })
}

// TestDumpNoCowBreaks: dumping a template-forked session is a read, not a
// write — it must not privatize a single shared page or bump the store's
// CoW-break counter.
func TestDumpNoCowBreaks(t *testing.T) {
	k := kernelsim.FromTemplate(kernelsim.Options{})
	before := kernelsim.SharedStore().Stats()
	resBefore := k.Mem.Residency()
	var buf bytes.Buffer
	if err := coredump.Dump(k.Target(), &buf); err != nil {
		t.Fatal(err)
	}
	after := kernelsim.SharedStore().Stats()
	resAfter := k.Mem.Residency()
	if after.CowBreaks != before.CowBreaks {
		t.Errorf("dump broke CoW: store breaks %d -> %d", before.CowBreaks, after.CowBreaks)
	}
	if resAfter.PrivateBytes != resBefore.PrivateBytes || resAfter.SharedPages != resBefore.SharedPages {
		t.Errorf("dump changed residency: %+v -> %+v", resBefore, resAfter)
	}
	if buf.Len() < 100*1024 {
		t.Errorf("forked dump suspiciously small: %d bytes", buf.Len())
	}
}

// TestDumpReleasedImage: a released fork is "zombie-readable" — its shared
// pages stay mapped read-only — so a post-mortem dump of an evicted session
// must still succeed and match the pre-release dump byte for byte.
func TestDumpReleasedImage(t *testing.T) {
	k := kernelsim.FromTemplate(kernelsim.Options{})
	var live bytes.Buffer
	if err := coredump.Dump(k.Target(), &live); err != nil {
		t.Fatal(err)
	}
	k.Mem.Release()
	var zombie bytes.Buffer
	if err := coredump.Dump(k.Target(), &zombie); err != nil {
		t.Fatalf("dump after release: %v", err)
	}
	if !bytes.Equal(live.Bytes(), zombie.Bytes()) {
		t.Error("released-image dump differs from live dump")
	}
}

// TestCoredumpVsLiveEquivalence is in internal/core's fleet tests (it needs
// the session manager); here we pin the narrower contract that a loaded
// dump reads back the exact bytes the fork held.
func TestForkRoundtrip(t *testing.T) {
	k := kernelsim.FromTemplate(kernelsim.Options{})
	tgt := dumpAndLoad(t, k)
	for _, probe := range []uint64{k.InitTask.Addr, k.SharedPage.Addr} {
		want, err := target.ReadU64(k.Target(), probe)
		if err != nil {
			t.Fatal(err)
		}
		got, err := target.ReadU64(tgt, probe)
		if err != nil {
			t.Fatalf("probe %#x: %v", probe, err)
		}
		if got != want {
			t.Errorf("probe %#x: %#x != %#x", probe, got, want)
		}
	}
}

func TestDumpDeterministic(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	var a, b bytes.Buffer
	if err := coredump.Dump(k.Target(), &a); err != nil {
		t.Fatal(err)
	}
	if err := coredump.Dump(k.Target(), &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("dump not deterministic")
	}
	if a.Len() < 100*1024 {
		t.Errorf("dump suspiciously small: %d bytes", a.Len())
	}
	// Header sanity.
	if !strings.HasPrefix(a.String(), "VLCORE01") {
		t.Error("bad header")
	}
}
