package perf_test

import (
	"testing"

	"visualinux/internal/core"
	"visualinux/internal/gdbrsp"
	"visualinux/internal/kernelsim"
	"visualinux/internal/perf"
	"visualinux/internal/render"
	"visualinux/internal/target"
	"visualinux/internal/vclstdlib"
)

// figRun is one figure's extraction outcome at one packet size.
type figRun struct {
	text  string // rendered graph (byte-identity oracle)
	txns  uint64 // opened link transfers
	conts uint64 // continuation chunks
	bytes uint64
	msOp  float64 // modeled cached kgdb ms for this figure
}

// runMatrix extracts every stdlib figure over an RSP stub with the given
// PacketSize, each figure behind a fresh snapshot (the live-session shape),
// and prices the traffic with the deterministic link model.
func runMatrix(t *testing.T, packetSize int) map[string]figRun {
	t.Helper()
	k := kernelsim.Build(kernelsim.Options{})
	sess, err := perf.NewRSPSession(k, gdbrsp.WithPacketSize(packetSize))
	if err != nil {
		t.Fatalf("PacketSize=%d: %v", packetSize, err)
	}
	defer sess.Close()
	if got := sess.Server.PacketSize(); got != packetSize {
		t.Fatalf("server packet size = %d, want %d", got, packetSize)
	}
	if got := sess.Client.PacketSize(); got != packetSize {
		t.Fatalf("negotiated packet size = %d, want %d", got, packetSize)
	}

	out := make(map[string]figRun)
	st := sess.Client.Stats()
	for _, fig := range vclstdlib.Figures() {
		snap := target.NewSnapshot(sess.Client)
		s := core.SessionOver(k, snap)
		_, bytes0, txns0 := st.Totals()
		conts0 := st.Continuations.Load()
		p, err := s.VPlot(fig.ID, fig.Program)
		if err != nil {
			t.Fatalf("PacketSize=%d figure %s: %v", packetSize, fig.ID, err)
		}
		_, bytes1, txns1 := st.Totals()
		r := figRun{
			text:  render.Text(p.Graph),
			txns:  txns1 - txns0,
			conts: st.Continuations.Load() - conts0,
			bytes: bytes1 - bytes0,
		}
		r.msOp = float64(target.DefaultKGDB.LinkCost(r.txns, r.conts, r.bytes).Nanoseconds()) / 1e6
		out[fig.ID] = r
	}
	return out
}

// TestRSPPacketSizeMatrix is the slow-link e2e: the same 20-figure workload
// over stubs negotiating PacketSize 512, 1024, and 4096 must yield
//
//   - byte-identical extractions (continuation reassembly is lossless),
//   - identical transaction counts (a transfer is one transaction no matter
//     how many packets its reply takes — shrinking the packet adds
//     continuations, never transactions),
//   - continuation counts that only shrink as packets grow,
//   - modeled cached kgdb-ms within 10% of the PacketSize=4096 run for every
//     figure (continuations are priced at wire turnaround, not memory-walk).
func TestRSPPacketSizeMatrix(t *testing.T) {
	sizes := []int{512, 1024, 4096}
	runs := make(map[int]map[string]figRun, len(sizes))
	for _, ps := range sizes {
		runs[ps] = runMatrix(t, ps)
	}

	ref := runs[4096]
	figs := vclstdlib.Figures()
	if len(figs) == 0 {
		t.Fatal("no stdlib figures")
	}
	for _, fig := range figs {
		base := ref[fig.ID]
		if base.text == "" {
			t.Fatalf("figure %s rendered empty at PacketSize=4096", fig.ID)
		}
		prevConts := uint64(1<<63 - 1)
		for _, ps := range sizes {
			r := runs[ps][fig.ID]
			if r.text != base.text {
				t.Errorf("figure %s: PacketSize=%d extraction differs from 4096", fig.ID, ps)
			}
			if r.txns != base.txns {
				t.Errorf("figure %s: PacketSize=%d txns = %d, want %d (packet size must not add transactions)",
					fig.ID, ps, r.txns, base.txns)
			}
			if r.bytes != base.bytes {
				t.Errorf("figure %s: PacketSize=%d bytes = %d, want %d", fig.ID, ps, r.bytes, base.bytes)
			}
			if r.conts > prevConts {
				t.Errorf("figure %s: continuations grew with packet size (%d at PacketSize=%d, %d before)",
					fig.ID, r.conts, ps, prevConts)
			}
			prevConts = r.conts
			if base.msOp > 0 {
				if ratio := r.msOp / base.msOp; ratio > 1.10 {
					t.Errorf("figure %s: PacketSize=%d modeled %.3fms/op, >10%% over 4096's %.3fms/op",
						fig.ID, ps, r.msOp, base.msOp)
				}
			}
		}
		// The small packet size must actually have exercised continuations
		// somewhere; assert on the aggregate below.
	}
	var conts512, conts4096 uint64
	for _, fig := range figs {
		conts512 += runs[512][fig.ID].conts
		conts4096 += runs[4096][fig.ID].conts
	}
	if conts512 == 0 {
		t.Error("PacketSize=512 run produced no continuations — annex batching is not engaging")
	}
	if conts512 <= conts4096 {
		t.Errorf("continuations not monotone in aggregate: 512→%d, 4096→%d", conts512, conts4096)
	}
}
