package perf

import "testing"

// A small fleet exercises every phase of the BENCH_9 personality and pins
// the deterministic claims; the full 64-session run is `make table9`.
func TestMeasureFleetMemSmall(t *testing.T) {
	rep, err := MeasureFleetMem(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(FormatFleetMem(rep))
	if rep.DedupRatio < 3 {
		t.Fatalf("dedup ratio %.2f, want >= 3 even at 8 sessions", rep.DedupRatio)
	}
	if rep.ForkAdmitP95MS > rep.BuildAdmitP95MS {
		t.Fatalf("fork admit p95 %.3f ms slower than build %.3f ms",
			rep.ForkAdmitP95MS, rep.BuildAdmitP95MS)
	}
	if rep.ZeroCopyFills == 0 {
		t.Fatal("extraction never took the zero-copy fill path")
	}
	if rep.TemplateForks == 0 || rep.CowBreaks == 0 {
		t.Fatalf("cow mechanics unobserved: forks=%d breaks=%d",
			rep.TemplateForks, rep.CowBreaks)
	}
	if rep.DivergedPrivateBytes == 0 {
		t.Fatal("workload divergence privatized nothing")
	}
	if rep.DivergedPrivateBytes >= rep.PerSessionImageBytes*uint64(rep.DivergedSessions) {
		t.Fatalf("divergence privatized whole images: %d bytes across %d sessions (image %d)",
			rep.DivergedPrivateBytes, rep.DivergedSessions, rep.PerSessionImageBytes)
	}
}
