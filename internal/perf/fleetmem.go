// Fleet-memory personality: the CoW experiment behind BENCH_9. Two arms
// admit the same fleet through POST /sessions — one forking the shared
// template image (the default), one building every kernel privately
// (PrivateBuilds) — and the report pins the tentpole claims: fork admission
// is no slower than build admission (it should be orders faster), the
// fleet's resident unique bytes sit a dedup ratio below the sum of
// per-session footprints, serving latency stays bounded, and workload
// divergence is charged per broken page, not per session image. Wall-clock
// numbers guard with absolute ceilings; the byte accounting is
// deterministic and guards with an exact floor.
package perf

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
	"visualinux/internal/server"
)

// FleetMemReport is the BENCH_9 document.
type FleetMemReport struct {
	Sessions        int `json:"sessions"`
	RequestsPerSess int `json:"requests_per_session"`

	// Admission, fork arm (template CoW clone) vs build arm (private
	// kernel image per session). Both arms exclude their first admission:
	// the fork arm's warm-up pays the one-time template build, the build
	// arm's pays cache warming, so the steady-state costs compare.
	ForkAdmitP50MS  float64 `json:"fork_admit_p50_ms"`
	ForkAdmitP95MS  float64 `json:"fork_admit_p95_ms"`
	BuildAdmitP50MS float64 `json:"build_admit_p50_ms"`
	BuildAdmitP95MS float64 `json:"build_admit_p95_ms"`

	// Serving across the forked fleet: worst per-session p95 — CoW-backed
	// reads must not cost tenants their latency bound.
	WorstSessionReqP95MS float64 `json:"worst_session_req_p95_ms"`

	// The dedup headline. PrivateSumBytes is what the fleet would occupy
	// with per-session images (the sum of every session's mapped
	// footprint); ResidentUniqueBytes is what it actually occupies (every
	// session's owned bytes plus the template images they amortize over).
	PrivateSumBytes     uint64  `json:"private_sum_bytes"`
	ResidentUniqueBytes uint64  `json:"resident_unique_bytes"`
	DedupRatio          float64 `json:"dedup_ratio"`

	// CoW mechanics observed during the run (store-level deltas).
	DedupHits     uint64 `json:"dedup_hits"`
	CowBreaks     uint64 `json:"cow_breaks"`
	TemplateForks uint64 `json:"template_forks"`
	ZeroCopyFills uint64 `json:"zero_copy_fills"`

	// Divergence accounting: bytes privatized by running the workload on a
	// slice of the fleet — must be pages, not images.
	DivergedSessions     int    `json:"diverged_sessions"`
	DivergedPrivateBytes uint64 `json:"diverged_private_bytes"`
	PerSessionImageBytes uint64 `json:"per_session_image_bytes"`
}

// fleetFigure matches the tenant personality: admissions stay cheap and
// uniform so the arms measure admission cost, not extraction breadth.
const fleetFigure = "7-1"

// MeasureFleetMem runs both admission arms and the serving/divergence
// phases. sessions and reqs <= 0 select the defaults (64 sessions, 16
// requests each).
func MeasureFleetMem(sessions, reqs int) (*FleetMemReport, error) {
	if sessions <= 0 {
		sessions = 64
	}
	if reqs <= 0 {
		reqs = 16
	}
	rep := &FleetMemReport{Sessions: sessions, RequestsPerSess: reqs}

	stBefore := kernelsim.SharedStore().Stats()
	_, forksBefore := kernelsim.TemplateStats()

	// --- build arm: private image per session ----------------------------
	// Runs first so its sessions are torn down before the fork arm's byte
	// accounting; its manager never touches the shared store.
	bmgr := core.NewSessionManager(core.ManagerOptions{
		MaxSessions: sessions + 8, PrivateBuilds: true}, obs.NewObserver())
	bsrv := server.NewManaged(bmgr, nil)
	buildAdmits, err := admitFleet(bsrv, sessions)
	if err != nil {
		return nil, fmt.Errorf("build arm: %w", err)
	}
	rep.BuildAdmitP50MS = percentileMS(buildAdmits, 50)
	rep.BuildAdmitP95MS = percentileMS(buildAdmits, 95)
	for i := 0; i < sessions; i++ {
		bmgr.Delete(fmt.Sprintf("t%d", i))
	}

	// --- fork arm: template CoW clones -----------------------------------
	mgr := core.NewSessionManager(core.ManagerOptions{MaxSessions: sessions + 8}, obs.NewObserver())
	srv := server.NewManaged(mgr, nil)
	forkAdmits, err := admitFleet(srv, sessions)
	if err != nil {
		return nil, fmt.Errorf("fork arm: %w", err)
	}
	rep.ForkAdmitP50MS = percentileMS(forkAdmits, 50)
	rep.ForkAdmitP95MS = percentileMS(forkAdmits, 95)

	// --- serving phase ----------------------------------------------------
	for i := 0; i < sessions; i++ {
		lats := make([]time.Duration, 0, reqs)
		for j := 0; j < reqs; j++ {
			path := fmt.Sprintf("/sessions/t%d/api/pane?id=1&format=json", i)
			t0 := time.Now()
			if code, body := tenantDo(srv, "GET", path, ""); code != 200 {
				return nil, fmt.Errorf("read %s: %d %s", path, code, body)
			}
			lats = append(lats, time.Since(t0))
		}
		if p := percentileMS(lats, 95); p > rep.WorstSessionReqP95MS {
			rep.WorstSessionReqP95MS = p
		}
	}

	// --- divergence phase -------------------------------------------------
	// A quarter of the fleet runs its workload; each diverged session is
	// charged only its CoW-broken pages.
	rep.DivergedSessions = sessions / 4
	for i := 0; i < rep.DivergedSessions; i++ {
		if err := srv.StepSession(fmt.Sprintf("t%d", i)); err != nil {
			return nil, fmt.Errorf("diverge t%d: %w", i, err)
		}
	}

	// --- byte accounting --------------------------------------------------
	for _, info := range mgr.List() {
		rep.PrivateSumBytes += info.MemBytes
		if info.PrivateBytes > 0 {
			rep.DivergedPrivateBytes += info.PrivateBytes
		}
		if rep.PerSessionImageBytes == 0 {
			rep.PerSessionImageBytes = info.MemBytes
		}
		if ms, ok := mgr.Attach(info.ID); ok {
			rep.ZeroCopyFills += ms.Extractor.Snapshot().ZeroCopyFills()
		}
	}
	rep.ResidentUniqueBytes = mgr.TotalMem() + kernelsim.TemplatesResidency()
	if rep.ResidentUniqueBytes > 0 {
		rep.DedupRatio = float64(rep.PrivateSumBytes) / float64(rep.ResidentUniqueBytes)
	}

	stAfter := kernelsim.SharedStore().Stats()
	_, forksAfter := kernelsim.TemplateStats()
	rep.DedupHits = stAfter.DedupHits - stBefore.DedupHits
	rep.CowBreaks = stAfter.CowBreaks - stBefore.CowBreaks
	rep.TemplateForks = forksAfter - forksBefore
	return rep, nil
}

// admitFleet posts sessions t0..t{n-1} and returns the admission latencies
// of everything after the warm-up t0.
func admitFleet(srv *server.Server, sessions int) ([]time.Duration, error) {
	if code, body := tenantDo(srv, "POST", "/sessions",
		fmt.Sprintf(`{"id":"t0","procs":1,"figures":[%q]}`, fleetFigure)); code != 201 {
		return nil, fmt.Errorf("warm-up admission: %d %s", code, body)
	}
	admits := make([]time.Duration, 0, sessions-1)
	for i := 1; i < sessions; i++ {
		t0 := time.Now()
		code, body := tenantDo(srv, "POST", "/sessions",
			fmt.Sprintf(`{"id":"t%d","procs":1,"figures":[%q]}`, i, fleetFigure))
		if code != 201 {
			return nil, fmt.Errorf("admission t%d: %d %s", i, code, body)
		}
		admits = append(admits, time.Since(t0))
	}
	return admits, nil
}

// FormatFleetMem renders the report as the console table perfbench prints.
func FormatFleetMem(rep *FleetMemReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d sessions, %d reads each\n", rep.Sessions, rep.RequestsPerSess)
	fmt.Fprintf(&sb, "admit (fork) | p50 %8.3f ms  p95 %8.3f ms\n", rep.ForkAdmitP50MS, rep.ForkAdmitP95MS)
	fmt.Fprintf(&sb, "admit (build)| p50 %8.3f ms  p95 %8.3f ms\n", rep.BuildAdmitP50MS, rep.BuildAdmitP95MS)
	fmt.Fprintf(&sb, "serve        | worst session p95 %.3f ms\n", rep.WorstSessionReqP95MS)
	fmt.Fprintf(&sb, "residency    | %d KiB private-sum vs %d KiB unique resident (%.1fx dedup)\n",
		rep.PrivateSumBytes/1024, rep.ResidentUniqueBytes/1024, rep.DedupRatio)
	fmt.Fprintf(&sb, "cow          | %d dedup hits, %d breaks, %d forks, %d zero-copy fills\n",
		rep.DedupHits, rep.CowBreaks, rep.TemplateForks, rep.ZeroCopyFills)
	fmt.Fprintf(&sb, "divergence   | %d sessions privatized %d KiB total (image is %d KiB)\n",
		rep.DivergedSessions, rep.DivergedPrivateBytes/1024, rep.PerSessionImageBytes/1024)
	return sb.String()
}

// FleetMemReportJSON marshals the report the way perfbench writes it.
func FleetMemReportJSON(rep *FleetMemReport) ([]byte, error) {
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}
