package perf_test

import (
	"strings"
	"testing"

	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
	"visualinux/internal/perf"
	"visualinux/internal/target"
	"visualinux/internal/vclstdlib"
)

// TestTable4Shapes verifies §5.4's qualitative claims on the personality
// they describe: a plain KGDB stub with one round trip per field read.
func TestTable4Shapes(t *testing.T) {
	pairs, err := perf.Table4Uncached(kernelsim.Options{}, target.DefaultKGDB)
	if err != nil {
		t.Fatalf("table4: %v", err)
	}
	if len(pairs) != 20 {
		t.Fatalf("rows = %d, want 20", len(pairs))
	}
	for _, f := range perf.ShapeChecks(pairs) {
		t.Errorf("shape check failed: %s", f)
	}
	out := perf.Format(pairs)
	if !strings.Contains(out, "3-4") || !strings.Contains(out, "socketconn") {
		t.Errorf("formatted table incomplete:\n%s", out)
	}
	t.Logf("\n%s", out)
}

func TestLatencyDominates(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	fig := mustFigure(t, "3-4")
	slow, err := perf.MeasureFigureKGDB(k, fig, target.DefaultKGDB)
	if err != nil {
		t.Fatal(err)
	}
	// With a 5ms round trip, total must be at least reads * 5ms.
	if minMS := float64(slow.Reads) * 5.0; slow.TotalMS < minMS {
		t.Errorf("KGDB total %.1fms below latency floor %.1fms", slow.TotalMS, minMS)
	}
}

func TestPerObjectRatio(t *testing.T) {
	// Paper §5.4: "retrieving an object is approximately 50 times slower"
	// on KGDB. Our model should land in that order of magnitude (>= 20x).
	// Measured uncached: the paper's number is for a plain stub.
	k := kernelsim.Build(kernelsim.Options{})
	fig := mustFigure(t, "7-1")
	fast, err := perf.MeasureFigure(k, fig)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := perf.MeasureFigureKGDBUncached(k, fig, target.DefaultKGDB)
	if err != nil {
		t.Fatal(err)
	}
	if fast.PerObjMS <= 0 {
		t.Skip("fast path too fast to resolve; ratio unmeasurable")
	}
	ratio := slow.PerObjMS / fast.PerObjMS
	if ratio < 20 {
		t.Errorf("KGDB per-object only %.1fx slower", ratio)
	}
}

// TestSnapshotCacheSpeedup pins the point of the snapshot cache: on
// list-heavy figures the modeled KGDB cost must drop at least 2x versus
// the uncached baseline. Totals are virtual-clock dominated, so the bound
// is stable under -race wall-time inflation.
func TestSnapshotCacheSpeedup(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	for _, id := range []string{"3-6", "6-1", "8-2"} {
		fig := mustFigure(t, id)
		uncached, err := perf.MeasureFigureKGDBUncached(k, fig, target.DefaultKGDB)
		if err != nil {
			t.Fatal(err)
		}
		cached, err := perf.MeasureFigureKGDB(k, fig, target.DefaultKGDB)
		if err != nil {
			t.Fatal(err)
		}
		if cached.TotalMS*2 > uncached.TotalMS {
			t.Errorf("%s: cached %.1fms not 2x below uncached %.1fms",
				id, cached.TotalMS, uncached.TotalMS)
		}
		if cached.Reads >= uncached.Reads {
			t.Errorf("%s: cache did not reduce link transactions (%d vs %d)",
				id, cached.Reads, uncached.Reads)
		}
	}
}

func mustFigure(t *testing.T, id string) vclstdlib.Figure {
	t.Helper()
	fig, ok := vclstdlib.FigureByID(id)
	if !ok {
		t.Fatalf("no figure %s", id)
	}
	return fig
}

// TestTracedLeafSpansAccountForKGDBTime is the observability acceptance
// check: on the modeled-KGDB personality, the trace's leaf target.read spans
// carry model_ns tags whose sum matches the row's reported extraction time
// within 5% (modeled link time dwarfs local evaluation time).
func TestTracedLeafSpansAccountForKGDBTime(t *testing.T) {
	k := kernelsim.Build(kernelsim.Options{})
	o := obs.NewObserver()
	row, tr, err := perf.MeasureFigureKGDBTraced(k, mustFigure(t, "3-6"), target.DefaultKGDB, o)
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil {
		t.Fatal("no trace returned")
	}
	sumMS := float64(tr.SumTag("model_ns")) / 1e6
	if sumMS <= 0 {
		t.Fatalf("no model_ns on leaf spans:\n%s", tr.FormatTree())
	}
	if diff := (row.TotalMS - sumMS) / row.TotalMS; diff < 0 || diff > 0.05 {
		t.Fatalf("leaf span sum %.2f ms vs reported %.2f ms (diff %.1f%%)",
			sumMS, row.TotalMS, diff*100)
	}
	// Every leaf target.read span is a real link transaction.
	var reads uint64
	tr.Walk(func(e *obs.SpanExport) {
		if e.Name == "target.read" {
			reads++
		}
	})
	if reads != row.Transactions {
		t.Fatalf("trace has %d target.read spans, row reports %d transactions", reads, row.Transactions)
	}
}
