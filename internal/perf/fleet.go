// Fleet-query personality: the cross-target debugging experiment behind
// BENCH_10. One server hosts a 16-target mixed fleet — live simulated
// kernels across heterogeneous workload variants plus loaded core dumps —
// and a single POST /fleet/query fans one ViewQL program over all of them,
// merging provenance-tagged per-target result sets. Measured: the fan-out
// latency distribution against the serial per-session alternative (the
// loop a human would otherwise script), and the merge integrity counters,
// which are deterministic.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"visualinux/internal/core"
	"visualinux/internal/coredump"
	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
	"visualinux/internal/server"
)

// FleetReport is the BENCH_10 document.
type FleetReport struct {
	Targets int `json:"targets"`
	Live    int `json:"live"`
	Core    int `json:"core"`
	Queries int `json:"queries"`

	// Fan-out: wall-clock POST /fleet/query over the whole fleet.
	FanoutP50MS float64 `json:"fanout_p50_ms"`
	FanoutP95MS float64 `json:"fanout_p95_ms"`

	// Serial baseline: the same program issued one target at a time,
	// summed — what querying the fleet costs without the fan-out.
	SerialP50MS float64 `json:"serial_p50_ms"`
	SpeedupX    float64 `json:"speedup_x"`

	// Merge integrity (deterministic): refs in the merged set, all
	// provenance-stamped; targets that answered without error.
	MergedRefs   int `json:"merged_refs"`
	HealthyTargs int `json:"healthy_targets"`
	TaggedRefs   int `json:"tagged_refs"`
}

// fleetQueryBody is the program every arm runs: one SELECT over the
// scheduler figure with a condition, so each target does real predicate
// work but the result stays compact.
const fleetQueryBody = `{"figure":"7-1","query":"busy = SELECT task_struct FROM * WHERE pid > 0"%s}`

// MeasureFleet admits the mixed fleet and measures fan-out vs serial.
// targets and queries <= 0 select the defaults (16 targets — 14 live
// across three workload variants, 2 core dumps — and 32 query rounds).
func MeasureFleet(targets, queries int) (*FleetReport, error) {
	if targets <= 0 {
		targets = 16
	}
	if targets < 4 {
		targets = 4
	}
	if queries <= 0 {
		queries = 32
	}
	nCore := 2
	nLive := targets - nCore
	rep := &FleetReport{Targets: targets, Live: nLive, Core: nCore, Queries: queries}

	mgr := core.NewSessionManager(core.ManagerOptions{MaxSessions: targets + 8}, obs.NewObserver())
	srv := server.NewManaged(mgr, nil)

	// Heterogeneous live members: three workload variants so the fleet's
	// targets genuinely differ (skewed runqueues, zombie tasks, preloaded
	// pipes) instead of 14 clones.
	variants := []string{
		`"procs":2,"runqueue_skew":2`,
		`"procs":2,"zombie_tasks":2`,
		`"procs":2,"pipe_burst":3`,
	}
	ids := make([]string, 0, targets)
	for i := 0; i < nLive; i++ {
		id := fmt.Sprintf("live%02d", i)
		body := fmt.Sprintf(`{"id":%q,%s,"figures":["7-1"]}`, id, variants[i%len(variants)])
		if code, out := tenantDo(srv, "POST", "/sessions", body); code != 201 {
			return nil, fmt.Errorf("admit %s: %d %s", id, code, out)
		}
		ids = append(ids, id)
	}

	// Post-mortem members: dump freshly built kernels to disk and admit
	// them back through the server-side core path, exactly the operator
	// flow (vlserver -core / POST /sessions {"core": path}).
	dir, err := os.MkdirTemp("", "vlfleet")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	for i := 0; i < nCore; i++ {
		id := fmt.Sprintf("dead%02d", i)
		path := fmt.Sprintf("%s/%s.vlcore", dir, id)
		fh, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		k := kernelsim.Build(kernelsim.Options{Processes: 2 + i, ThreadsPerProc: 1, VMAsPerProcess: 2, PagesPerFile: 2})
		if err := coredump.Dump(k.Target(), fh); err != nil {
			fh.Close()
			return nil, err
		}
		fh.Close()
		body := fmt.Sprintf(`{"id":%q,"core":%q,"figures":["7-1"]}`, id, path)
		if code, out := tenantDo(srv, "POST", "/sessions", body); code != 201 {
			return nil, fmt.Errorf("admit %s: %d %s", id, code, out)
		}
		ids = append(ids, id)
	}

	// --- fan-out arm ------------------------------------------------------
	full := fmt.Sprintf(fleetQueryBody, "")
	var lastOut string
	fanout := make([]time.Duration, 0, queries)
	for i := 0; i < queries; i++ {
		t0 := time.Now()
		code, out := tenantDo(srv, "POST", "/fleet/query", full)
		if code != 200 {
			return nil, fmt.Errorf("fleet query: %d %s", code, out)
		}
		fanout = append(fanout, time.Since(t0))
		lastOut = out
	}
	rep.FanoutP50MS = percentileMS(fanout, 50)
	rep.FanoutP95MS = percentileMS(fanout, 95)

	// --- serial arm -------------------------------------------------------
	// One target per request, summed: the scripted-loop alternative the
	// fan-out replaces. Same program, same serving path.
	serial := make([]time.Duration, 0, queries)
	for i := 0; i < queries; i++ {
		t0 := time.Now()
		for _, id := range ids {
			body := fmt.Sprintf(fleetQueryBody, fmt.Sprintf(`,"sessions":[%q]`, id))
			if code, out := tenantDo(srv, "POST", "/fleet/query", body); code != 200 {
				return nil, fmt.Errorf("serial query %s: %d %s", id, code, out)
			}
		}
		serial = append(serial, time.Since(t0))
	}
	rep.SerialP50MS = percentileMS(serial, 50)
	if rep.FanoutP50MS > 0 {
		rep.SpeedupX = rep.SerialP50MS / rep.FanoutP50MS
	}

	// --- merge integrity --------------------------------------------------
	var res struct {
		Targets []struct {
			Err string `json:"error"`
		} `json:"targets"`
		Merged []struct {
			Target string `json:"target"`
		} `json:"merged"`
	}
	if err := json.Unmarshal([]byte(lastOut), &res); err != nil {
		return nil, fmt.Errorf("decode fleet result: %w", err)
	}
	rep.MergedRefs = len(res.Merged)
	for _, tr := range res.Targets {
		if tr.Err == "" {
			rep.HealthyTargs++
		}
	}
	for _, r := range res.Merged {
		if r.Target != "" {
			rep.TaggedRefs++
		}
	}
	return rep, nil
}

// FormatFleet renders the report as the console table perfbench prints.
func FormatFleet(rep *FleetReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d targets (%d live, %d core dumps), %d query rounds\n",
		rep.Targets, rep.Live, rep.Core, rep.Queries)
	fmt.Fprintf(&sb, "fan-out     | p50 %8.2f ms  p95 %8.2f ms\n", rep.FanoutP50MS, rep.FanoutP95MS)
	fmt.Fprintf(&sb, "serial loop | p50 %8.2f ms  (%.2fx slower than fan-out)\n", rep.SerialP50MS, rep.SpeedupX)
	fmt.Fprintf(&sb, "merge       | %d refs, %d provenance-tagged, %d/%d targets healthy\n",
		rep.MergedRefs, rep.TaggedRefs, rep.HealthyTargs, rep.Targets)
	return sb.String()
}

// FleetReportJSON marshals the report the way perfbench writes it.
func FleetReportJSON(rep *FleetReport) ([]byte, error) {
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}
