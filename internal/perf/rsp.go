package perf

import (
	"fmt"
	"time"

	"visualinux/internal/core"
	"visualinux/internal/gdbrsp"
	"visualinux/internal/kernelsim"
	"visualinux/internal/target"
	"visualinux/internal/vclstdlib"
)

// RSPSession bundles a served simulated kernel with a dialed RSP client,
// giving a third Table 4 personality: "GDB (RSP/localhost)" — real socket
// round trips per memory read, sitting between the in-process fast target
// and the modeled KGDB serial link.
type RSPSession struct {
	Kernel *kernelsim.Kernel
	Server *gdbrsp.Server
	Client *gdbrsp.Client
}

// NewRSPSession serves k over a loopback RSP socket and dials it. Server
// options model stub constraints — WithPacketSize(512) is a serial KGDB
// stub, the default is QEMU-like.
func NewRSPSession(k *kernelsim.Kernel, opts ...gdbrsp.ServerOption) (*RSPSession, error) {
	srv, err := gdbrsp.Serve("127.0.0.1:0", k.Target(), opts...)
	if err != nil {
		return nil, err
	}
	client, err := gdbrsp.Dial(srv.Addr(), k.Reg, k.Target().Symbols())
	if err != nil {
		srv.Close()
		return nil, err
	}
	return &RSPSession{Kernel: k, Server: srv, Client: client}, nil
}

// Close tears the session down.
func (r *RSPSession) Close() {
	r.Client.Close()
	r.Server.Close()
}

// MeasureFigureRSP extracts one figure through the RSP wire.
func (r *RSPSession) MeasureFigureRSP(fig vclstdlib.Figure) (Row, error) {
	s := core.SessionOver(r.Kernel, r.Client)
	reads0, bytes0, txns0 := r.Client.Stats().Totals()
	t0 := time.Now()
	p, err := s.VPlot(fig.ID, fig.Program)
	if err != nil {
		return Row{}, err
	}
	elapsed := time.Since(t0)
	reads1, bytes1, txns1 := r.Client.Stats().Totals()
	return makeRow(fig.ID, p.Graph.Stats.Objects, reads1-reads0, txns1-txns0, bytes1-bytes0, elapsed), nil
}

// MeasureFigureRSPCached extracts one figure through the RSP wire behind a
// fresh snapshot cache (the live-session configuration) and prices the link
// traffic with the latency model's deterministic LinkCost — opened transfers
// pay the full per-transaction memory-walk cost, annex continuation chunks
// pay only the wire turnaround. TotalMS is purely modeled: no wall clock, so
// runs are comparable across packet sizes down to the microsecond.
func (r *RSPSession) MeasureFigureRSPCached(fig vclstdlib.Figure, model target.LatencyModel) (Row, error) {
	snap := target.NewSnapshot(r.Client)
	s := core.SessionOver(r.Kernel, snap)
	st := r.Client.Stats()
	reads0, bytes0, txns0 := st.Totals()
	conts0 := st.Continuations.Load()
	p, err := s.VPlot(fig.ID, fig.Program)
	if err != nil {
		return Row{}, err
	}
	reads1, bytes1, txns1 := st.Totals()
	conts := st.Continuations.Load() - conts0
	modeled := model.LinkCost(txns1-txns0, conts, bytes1-bytes0)
	row := makeRow(fig.ID, p.Graph.Stats.Objects, reads1-reads0, txns1-txns0, bytes1-bytes0, modeled)
	row.Continuations = conts
	return row, nil
}

// Table4RSPCached measures every figure over the RSP wire behind the
// snapshot cache with modeled link pricing — the "KGDB over a real packet
// protocol" personality the slow-link benchmarks compare across PacketSize.
func Table4RSPCached(opts kernelsim.Options, model target.LatencyModel, srvOpts ...gdbrsp.ServerOption) ([]Row, error) {
	k := kernelsim.Build(opts)
	sess, err := NewRSPSession(k, srvOpts...)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	var out []Row
	for _, fig := range vclstdlib.Figures() {
		row, err := sess.MeasureFigureRSPCached(fig, model)
		if err != nil {
			return nil, fmt.Errorf("figure %s (rsp cached): %w", fig.ID, err)
		}
		out = append(out, row)
	}
	return out, nil
}

// Table4RSP measures every figure over the RSP wire.
func Table4RSP(opts kernelsim.Options) ([]Row, error) {
	k := kernelsim.Build(opts)
	sess, err := NewRSPSession(k)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	var out []Row
	for _, fig := range vclstdlib.Figures() {
		row, err := sess.MeasureFigureRSP(fig)
		if err != nil {
			return nil, fmt.Errorf("figure %s (rsp): %w", fig.ID, err)
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatRows renders plain rows (for the RSP column).
func FormatRows(title string, rows []Row) string {
	out := title + "\n"
	out += fmt.Sprintf("%-12s | %10s %8s %8s | %6s %7s\n", "figure", "total(ms)", "/obj", "/KB", "objs", "KB")
	for _, r := range rows {
		out += fmt.Sprintf("%-12s | %10.2f %8.3f %8.3f | %6d %7.1f\n",
			r.FigureID, r.TotalMS, r.PerObjMS, r.PerKBMS, r.Objects, r.KBytes)
	}
	return out
}
