// Tenant personality: the multi-tenant serving experiment behind BENCH_8.
// One server process admits a fleet of sessions through POST /sessions,
// serves pane reads against every tenant, and then pits a victim session
// against a hot neighbor free-running stop events — measuring what the
// session fabric promises: shared immutable infrastructure (zero stdlib
// re-parses/re-compiles after the first admission), bounded per-session
// request latency, and cross-session isolation through the global pool's
// per-session fair scheduling. All latencies are host wall-clock, so the
// guard uses absolute ceilings (like the stream personality), plus exact
// zero-equality on the shared-infrastructure counters, which are
// deterministic.
package perf

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"time"

	"visualinux/internal/core"
	"visualinux/internal/obs"
	"visualinux/internal/server"
	"visualinux/internal/viewcl"
)

// TenantReport is the BENCH_8 document.
type TenantReport struct {
	Sessions        int `json:"sessions"`
	RequestsPerSess int `json:"requests_per_session"`
	Rounds          int `json:"rounds"`

	// Admission: wall-clock cost of POST /sessions (kernel build + cold
	// extraction round through the shared pool).
	AdmitP50MS float64 `json:"admit_p50_ms"`
	AdmitP95MS float64 `json:"admit_p95_ms"`

	// Serving: every session answers pane reads; the headline is the WORST
	// session's p95 — the guarantee any tenant gets, not the average.
	WorstSessionReqP95MS float64 `json:"worst_session_req_p95_ms"`
	PooledReqP50MS       float64 `json:"pooled_req_p50_ms"`

	// Shared immutable infrastructure: stdlib parses and program lowers
	// that happened during every admission after the first. The fabric's
	// contract is exactly zero — one parse+compile total, however many
	// tenants extract the same figures.
	StdlibReparses   uint64 `json:"stdlib_reparses"`
	StdlibRecompiles uint64 `json:"stdlib_recompiles"`

	// Isolation: the victim session's steady stop-event round, alone vs
	// with a hot neighbor free-running rounds as fast as it can. The ratio
	// is the fairness proof: the global pool's per-session round-robin
	// must bound how much a noisy tenant can inflate a quiet one's round.
	VictimAloneP50MS     float64 `json:"victim_alone_p50_ms"`
	VictimContendedP50MS float64 `json:"victim_contended_p50_ms"`
	IsolationRatio       float64 `json:"isolation_ratio"`
	HotRounds            int64   `json:"hot_rounds"`
}

// tenantFigure keeps fleet admissions cheap and uniform; the isolation
// pair extracts the full stdlib to make rounds meaty enough to contend.
const tenantFigure = "7-1"

// MeasureTenants runs the fleet and isolation phases. sessions, reqs, and
// rounds <= 0 select the defaults (64 sessions, 32 requests each, 24
// victim rounds per arm).
func MeasureTenants(sessions, reqs, rounds int) (*TenantReport, error) {
	if sessions <= 0 {
		sessions = 64
	}
	if reqs <= 0 {
		reqs = 32
	}
	if rounds <= 0 {
		rounds = 24
	}
	rep := &TenantReport{Sessions: sessions, RequestsPerSess: reqs, Rounds: rounds}

	mgr := core.NewSessionManager(core.ManagerOptions{MaxSessions: sessions + 8}, obs.NewObserver())
	srv := server.NewManaged(mgr, nil)

	// --- fleet phase: admissions -----------------------------------------
	// The first admission may parse+compile the figure's program; every one
	// after it must ride the shared caches.
	if code, body := tenantDo(srv, "POST", "/sessions",
		fmt.Sprintf(`{"id":"t0","procs":1,"figures":[%q]}`, tenantFigure)); code != 201 {
		return nil, fmt.Errorf("warm-up admission: %d %s", code, body)
	}
	_, missesBefore, _ := viewcl.ParseCacheStats()
	compilesBefore := viewcl.CompileCount()

	admits := make([]time.Duration, 0, sessions-1)
	for i := 1; i < sessions; i++ {
		t0 := time.Now()
		code, body := tenantDo(srv, "POST", "/sessions",
			fmt.Sprintf(`{"id":"t%d","procs":1,"figures":[%q]}`, i, tenantFigure))
		if code != 201 {
			return nil, fmt.Errorf("admission t%d: %d %s", i, code, body)
		}
		admits = append(admits, time.Since(t0))
	}
	rep.AdmitP50MS = percentileMS(admits, 50)
	rep.AdmitP95MS = percentileMS(admits, 95)
	_, missesAfter, _ := viewcl.ParseCacheStats()
	rep.StdlibReparses = missesAfter - missesBefore
	rep.StdlibRecompiles = viewcl.CompileCount() - compilesBefore

	// --- fleet phase: serving --------------------------------------------
	// Every tenant answers a read mix (pane body + pane listing); the worst
	// per-session p95 is the headline.
	var pooled []time.Duration
	for i := 0; i < sessions; i++ {
		lats := make([]time.Duration, 0, reqs)
		for j := 0; j < reqs; j++ {
			path := fmt.Sprintf("/sessions/t%d/api/pane?id=1&format=json", i)
			if j%4 == 3 {
				path = fmt.Sprintf("/sessions/t%d/api/panes", i)
			}
			t0 := time.Now()
			if code, body := tenantDo(srv, "GET", path, ""); code != 200 {
				return nil, fmt.Errorf("read %s: %d %s", path, code, body)
			}
			lats = append(lats, time.Since(t0))
		}
		if p := percentileMS(lats, 95); p > rep.WorstSessionReqP95MS {
			rep.WorstSessionReqP95MS = p
		}
		pooled = append(pooled, lats...)
	}
	rep.PooledReqP50MS = percentileMS(pooled, 50)

	// --- isolation phase --------------------------------------------------
	// Victim and hot neighbor extract the full stdlib so rounds are heavy
	// enough to fight over pool workers.
	for _, id := range []string{"victim", "hot"} {
		if code, body := tenantDo(srv, "POST", "/sessions",
			fmt.Sprintf(`{"id":%q,"procs":1}`, id)); code != 201 {
			return nil, fmt.Errorf("admission %s: %d %s", id, code, body)
		}
	}
	victimRound := func() (time.Duration, error) {
		t0 := time.Now()
		if err := srv.StepSession("victim"); err != nil {
			return 0, err
		}
		return time.Since(t0), nil
	}

	alone := make([]time.Duration, 0, rounds)
	for i := 0; i < rounds; i++ {
		d, err := victimRound()
		if err != nil {
			return nil, fmt.Errorf("victim alone: %w", err)
		}
		alone = append(alone, d)
	}
	rep.VictimAloneP50MS = percentileMS(alone, 50)

	stop := make(chan struct{})
	hotDone := make(chan struct{})
	var hotRounds atomic.Int64
	go func() {
		defer close(hotDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := srv.StepSession("hot"); err != nil {
				return
			}
			hotRounds.Add(1)
		}
	}()
	contended := make([]time.Duration, 0, rounds)
	for i := 0; i < rounds; i++ {
		d, err := victimRound()
		if err != nil {
			close(stop)
			<-hotDone
			return nil, fmt.Errorf("victim contended: %w", err)
		}
		contended = append(contended, d)
	}
	close(stop)
	<-hotDone
	rep.VictimContendedP50MS = percentileMS(contended, 50)
	rep.HotRounds = hotRounds.Load()
	if rep.VictimAloneP50MS > 0 {
		rep.IsolationRatio = rep.VictimContendedP50MS / rep.VictimAloneP50MS
	}
	return rep, nil
}

// tenantDo runs one request through the server's mux without TCP.
func tenantDo(srv *server.Server, method, path, body string) (int, string) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	srv.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

// FormatTenants renders the report as the console table perfbench prints.
func FormatTenants(rep *TenantReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d sessions, %d reads each, %d victim rounds/arm\n",
		rep.Sessions, rep.RequestsPerSess, rep.Rounds)
	fmt.Fprintf(&sb, "admit       | p50 %8.2f ms  p95 %8.2f ms\n", rep.AdmitP50MS, rep.AdmitP95MS)
	fmt.Fprintf(&sb, "serve       | pooled p50 %.3f ms; worst session p95 %.3f ms\n",
		rep.PooledReqP50MS, rep.WorstSessionReqP95MS)
	fmt.Fprintf(&sb, "shared infra| %d stdlib re-parses, %d re-compiles across %d admissions after warm-up\n",
		rep.StdlibReparses, rep.StdlibRecompiles, rep.Sessions-1)
	fmt.Fprintf(&sb, "isolation   | victim p50 %.2f ms alone vs %.2f ms beside hot neighbor (%.2fx, %d hot rounds)\n",
		rep.VictimAloneP50MS, rep.VictimContendedP50MS, rep.IsolationRatio, rep.HotRounds)
	return sb.String()
}

// TenantReportJSON marshals the report the way perfbench writes it.
func TenantReportJSON(rep *TenantReport) ([]byte, error) {
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}
