// Package perf implements the paper's Table 4 experiment: for every ULK
// figure, measure the cost of the ViewCL extraction step (the paper notes
// ViewQL and front-end rendering are negligible) on the two target
// personalities:
//
//   - "GDB (QEMU)": the raw simulated target — memory reads cost local work
//     only, like GDB attached to a localhost QEMU gdbstub;
//   - "KGDB (rpi-400)": the same image behind a latency model charging the
//     paper's measured ~5ms per read transaction, accounted on a virtual
//     clock so the whole sweep stays runnable.
//
// Reported columns mirror the paper: total cost (ms), cost per object (ms),
// and cost per KB of transferred data structure (ms).
package perf

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
	"visualinux/internal/target"
	"visualinux/internal/vclstdlib"
)

// Row is one measurement of one figure on one target.
type Row struct {
	FigureID string
	Objects  int
	Reads    uint64
	KBytes   float64
	TotalMS  float64 // extraction cost
	PerObjMS float64
	PerKBMS  float64
}

// Pair is the Table 4 row: the same figure on both targets.
type Pair struct {
	FigureID string
	GDB      Row // "GDB (QEMU)"
	KGDB     Row // "KGDB (rpi-400)"
}

// MeasureFigure extracts one figure on the kernel's fast target and returns
// the row.
func MeasureFigure(k *kernelsim.Kernel, fig vclstdlib.Figure) (Row, error) {
	s := core.SessionOver(k, k.Target())
	t0 := time.Now()
	p, err := s.VPlot(fig.ID, fig.Program)
	if err != nil {
		return Row{}, err
	}
	elapsed := time.Since(t0)
	return makeRow(fig.ID, p.Graph.Stats.Objects, p.Graph.Stats.Reads, p.Graph.Stats.Bytes, elapsed), nil
}

// MeasureFigureKGDB extracts one figure through the latency model. The cost
// is wall time plus the virtual latency the model accumulated — i.e. what a
// real serial KGDB session would have waited.
func MeasureFigureKGDB(k *kernelsim.Kernel, fig vclstdlib.Figure, model target.LatencyModel) (Row, error) {
	lt := target.WithLatency(k.Target(), model)
	s := core.SessionOver(k, lt)
	t0 := time.Now()
	p, err := s.VPlot(fig.ID, fig.Program)
	if err != nil {
		return Row{}, err
	}
	elapsed := time.Since(t0) + lt.VirtualElapsed()
	reads, bytes := lt.Stats().Snapshot()
	return makeRow(fig.ID, p.Graph.Stats.Objects, reads, bytes, elapsed), nil
}

func makeRow(id string, objects int, reads, bytes uint64, elapsed time.Duration) Row {
	r := Row{
		FigureID: id,
		Objects:  objects,
		Reads:    reads,
		KBytes:   float64(bytes) / 1024,
		TotalMS:  float64(elapsed.Nanoseconds()) / 1e6,
	}
	if objects > 0 {
		r.PerObjMS = r.TotalMS / float64(objects)
	}
	if r.KBytes > 0 {
		r.PerKBMS = r.TotalMS / r.KBytes
	}
	return r
}

// Table4 measures every Table 2 figure on both targets. A fresh session is
// used per figure (no caching across plots), like the paper's methodology
// of measuring each plot's extraction independently.
func Table4(opts kernelsim.Options, model target.LatencyModel) ([]Pair, error) {
	k := kernelsim.Build(opts)
	var out []Pair
	for _, fig := range vclstdlib.Figures() {
		fast, err := MeasureFigure(k, fig)
		if err != nil {
			return nil, fmt.Errorf("figure %s (fast): %w", fig.ID, err)
		}
		slow, err := MeasureFigureKGDB(k, fig, model)
		if err != nil {
			return nil, fmt.Errorf("figure %s (kgdb): %w", fig.ID, err)
		}
		out = append(out, Pair{FigureID: fig.ID, GDB: fast, KGDB: slow})
	}
	return out, nil
}

// Format renders the pairs as the paper's Table 4 layout.
func Format(pairs []Pair) string {
	var sb strings.Builder
	sb.WriteString("Table 4: visualization overhead per figure\n")
	sb.WriteString(fmt.Sprintf("%-12s | %8s %8s %8s | %10s %8s %8s | %6s %7s\n",
		"figure", "gdb(ms)", "/obj", "/KB", "kgdb(ms)", "/obj", "/KB", "objs", "KB"))
	sb.WriteString(strings.Repeat("-", 96) + "\n")
	for _, p := range pairs {
		sb.WriteString(fmt.Sprintf("%-12s | %8.2f %8.3f %8.3f | %10.1f %8.2f %8.1f | %6d %7.1f\n",
			p.FigureID,
			p.GDB.TotalMS, p.GDB.PerObjMS, p.GDB.PerKBMS,
			p.KGDB.TotalMS, p.KGDB.PerObjMS, p.KGDB.PerKBMS,
			p.GDB.Objects, p.GDB.KBytes))
	}
	return sb.String()
}

// ShapeChecks verifies the qualitative claims of the paper's §5.4 against
// measured pairs, returning human-readable failures (empty = all hold):
//
//  1. KGDB is dramatically slower than GDB-QEMU for every figure;
//  2. per-object cost on KGDB is orders of magnitude above GDB's;
//  3. figure cost ranks roughly with read-transaction count (the
//     C-expression evaluation bottleneck);
//  4. small figures stay interactive even on KGDB (the paper's "acceptable
//     if we focus on smaller data structures").
func ShapeChecks(pairs []Pair) []string {
	var fails []string
	var smallOK bool
	for _, p := range pairs {
		if p.KGDB.TotalMS < p.GDB.TotalMS*10 {
			fails = append(fails, fmt.Sprintf("%s: KGDB (%.1fms) not >=10x GDB (%.1fms)",
				p.FigureID, p.KGDB.TotalMS, p.GDB.TotalMS))
		}
		if p.GDB.Objects != p.KGDB.Objects {
			fails = append(fails, fmt.Sprintf("%s: object counts differ (%d vs %d)",
				p.FigureID, p.GDB.Objects, p.KGDB.Objects))
		}
		if p.KGDB.TotalMS < 2000 && p.GDB.Objects > 0 {
			smallOK = true
		}
	}
	if !smallOK {
		fails = append(fails, "no figure stays under 2s on KGDB — small-structure interactivity lost")
	}
	// Rank correlation between reads and KGDB totals (claim 3).
	if tau := rankCorrelation(pairs); tau < 0.7 {
		fails = append(fails, fmt.Sprintf("KGDB cost poorly ranked by read count (tau=%.2f)", tau))
	}
	return fails
}

// rankCorrelation computes Kendall's tau between read counts and KGDB cost.
func rankCorrelation(pairs []Pair) float64 {
	type pt struct{ reads, ms float64 }
	pts := make([]pt, len(pairs))
	for i, p := range pairs {
		pts[i] = pt{float64(p.KGDB.Reads), p.KGDB.TotalMS}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].reads < pts[j].reads })
	concordant, discordant := 0, 0
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			switch {
			case pts[i].ms < pts[j].ms:
				concordant++
			case pts[i].ms > pts[j].ms:
				discordant++
			}
		}
	}
	total := concordant + discordant
	if total == 0 {
		return 1
	}
	return float64(concordant-discordant) / float64(total)
}
