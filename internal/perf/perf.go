// Package perf implements the paper's Table 4 experiment: for every ULK
// figure, measure the cost of the ViewCL extraction step (the paper notes
// ViewQL and front-end rendering are negligible) on the two target
// personalities:
//
//   - "GDB (QEMU)": the raw simulated target — memory reads cost local work
//     only, like GDB attached to a localhost QEMU gdbstub;
//   - "KGDB (rpi-400)": the same image behind a latency model charging the
//     paper's measured ~5ms per read transaction, accounted on a virtual
//     clock so the whole sweep stays runnable.
//
// Reported columns mirror the paper: total cost (ms), cost per object (ms),
// and cost per KB of transferred data structure (ms).
package perf

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
	"visualinux/internal/target"
	"visualinux/internal/vclstdlib"
)

// Row is one measurement of one figure on one target.
type Row struct {
	FigureID      string
	Objects       int
	Reads         uint64 // read requests that reached the (modeled) link
	Transactions  uint64 // link round trips (>= Reads when requests split)
	Continuations uint64 // follow-up packets of already-open transfers (RSP annex chunks)
	KBytes        float64
	TotalMS       float64 // extraction cost
	PerObjMS      float64
	PerKBMS       float64
}

// Pair is the Table 4 row: the same figure on both targets.
type Pair struct {
	FigureID string
	GDB      Row // "GDB (QEMU)"
	KGDB     Row // "KGDB (rpi-400)"
}

// MeasureFigure extracts one figure on the kernel's fast target and returns
// the row. The kernel target is wrapped with an isolated Stats view so
// concurrent measurements never race on diffing one shared counter.
func MeasureFigure(k *kernelsim.Kernel, fig vclstdlib.Figure) (Row, error) {
	s := core.SessionOver(k, target.WithStats(k.Target()))
	t0 := time.Now()
	p, err := s.VPlot(fig.ID, fig.Program)
	if err != nil {
		return Row{}, err
	}
	elapsed := time.Since(t0)
	return makeRow(fig.ID, p.Graph.Stats.Objects, p.Graph.Stats.Reads, p.Graph.Stats.Reads,
		p.Graph.Stats.Bytes, elapsed), nil
}

// MeasureFigureKGDB extracts one figure through the latency model with the
// snapshot read cache layered on top, the way a live session runs: the
// machine is stopped, so every page crosses the serial link at most once and
// repeat field reads are free. The cost is wall time plus the virtual
// latency the model accumulated — i.e. what a real KGDB session would have
// waited. Reads/KBytes report link-level traffic (what the cache could not
// absorb), which is what the latency model charges for.
func MeasureFigureKGDB(k *kernelsim.Kernel, fig vclstdlib.Figure, model target.LatencyModel) (Row, error) {
	lt := target.WithLatency(k.Target(), model)
	snap := target.NewSnapshot(lt)
	s := core.SessionOver(k, snap)
	t0 := time.Now()
	p, err := s.VPlot(fig.ID, fig.Program)
	if err != nil {
		return Row{}, err
	}
	elapsed := time.Since(t0) + lt.VirtualElapsed()
	reads, bytes, txns := lt.Stats().Totals()
	return makeRow(fig.ID, p.Graph.Stats.Objects, reads, txns, bytes, elapsed), nil
}

// MeasureFigureKGDBTraced is MeasureFigureKGDB with the obs tap inserted
// between the latency model and the snapshot cache, so every span on the
// returned trace is a transaction that really crossed the modeled link
// (cache hits never reach it). The trace's target.read leaves carry
// model_ns tags summing to the modeled KGDB wait.
func MeasureFigureKGDBTraced(k *kernelsim.Kernel, fig vclstdlib.Figure, model target.LatencyModel, o *obs.Observer) (Row, *obs.SpanExport, error) {
	lt := target.WithLatency(k.Target(), model)
	inst := target.Instrument(lt, o, obs.Tag{Key: "figure", Value: fig.ID})
	snap := target.NewSnapshot(inst).Instrument(o)
	s := core.SessionOver(k, snap)
	s.EnableObs(o)
	t0 := time.Now()
	p, err := s.VPlot(fig.ID, fig.Program)
	if err != nil {
		return Row{}, nil, err
	}
	elapsed := time.Since(t0) + lt.VirtualElapsed()
	reads, bytes, txns := lt.Stats().Totals()
	_, tr, _ := s.LastTrace()
	return makeRow(fig.ID, p.Graph.Stats.Objects, reads, txns, bytes, elapsed), tr, nil
}

// MeasureFigureKGDBUncached is MeasureFigureKGDB without the snapshot cache:
// every field read is its own modeled round trip. It exists as the baseline
// the cached path is compared against (BenchmarkTable4KGDBUncached).
func MeasureFigureKGDBUncached(k *kernelsim.Kernel, fig vclstdlib.Figure, model target.LatencyModel) (Row, error) {
	lt := target.WithLatency(k.Target(), model)
	s := core.SessionOver(k, lt)
	t0 := time.Now()
	p, err := s.VPlot(fig.ID, fig.Program)
	if err != nil {
		return Row{}, err
	}
	elapsed := time.Since(t0) + lt.VirtualElapsed()
	reads, bytes, txns := lt.Stats().Totals()
	return makeRow(fig.ID, p.Graph.Stats.Objects, reads, txns, bytes, elapsed), nil
}

func makeRow(id string, objects int, reads, txns, bytes uint64, elapsed time.Duration) Row {
	r := Row{
		FigureID:     id,
		Objects:      objects,
		Reads:        reads,
		Transactions: txns,
		KBytes:       float64(bytes) / 1024,
		TotalMS:      float64(elapsed.Nanoseconds()) / 1e6,
	}
	if objects > 0 {
		r.PerObjMS = r.TotalMS / float64(objects)
	}
	if r.KBytes > 0 {
		r.PerKBMS = r.TotalMS / r.KBytes
	}
	return r
}

// Table4 measures every Table 2 figure on both targets, with the KGDB
// personality running behind the snapshot cache the way a live session
// does. A fresh session is used per figure (no caching across plots), like
// the paper's methodology of measuring each plot's extraction
// independently. Figures are measured concurrently by a bounded worker
// pool: each worker gets its own stats view and latency clock over the
// shared read-only kernel image, so the measurements are independent even
// though the memory is shared.
func Table4(opts kernelsim.Options, model target.LatencyModel) ([]Pair, error) {
	return table4(opts, model, MeasureFigureKGDB)
}

// Table4Uncached is Table 4 with the paper-faithful KGDB personality: no
// snapshot cache, one modeled round trip per field read. This is the
// configuration §5.4's numbers describe, and what ShapeChecks verifies.
func Table4Uncached(opts kernelsim.Options, model target.LatencyModel) ([]Pair, error) {
	return table4(opts, model, MeasureFigureKGDBUncached)
}

func table4(opts kernelsim.Options, model target.LatencyModel,
	kgdb func(*kernelsim.Kernel, vclstdlib.Figure, target.LatencyModel) (Row, error)) ([]Pair, error) {
	k := kernelsim.Build(opts)
	figs := vclstdlib.Figures()
	pairs := make([]Pair, len(figs))
	errs := make([]error, len(figs))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(figs) {
		workers = len(figs)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, fig := range figs {
		wg.Add(1)
		go func(i int, fig vclstdlib.Figure) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fast, err := MeasureFigure(k, fig)
			if err != nil {
				errs[i] = fmt.Errorf("figure %s (fast): %w", fig.ID, err)
				return
			}
			slow, err := kgdb(k, fig, model)
			if err != nil {
				errs[i] = fmt.Errorf("figure %s (kgdb): %w", fig.ID, err)
				return
			}
			pairs[i] = Pair{FigureID: fig.ID, GDB: fast, KGDB: slow}
		}(i, fig)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pairs, nil
}

// Format renders the pairs as the paper's Table 4 layout.
func Format(pairs []Pair) string {
	var sb strings.Builder
	sb.WriteString("Table 4: visualization overhead per figure\n")
	sb.WriteString(fmt.Sprintf("%-12s | %8s %8s %8s | %10s %8s %8s | %6s %7s\n",
		"figure", "gdb(ms)", "/obj", "/KB", "kgdb(ms)", "/obj", "/KB", "objs", "KB"))
	sb.WriteString(strings.Repeat("-", 96) + "\n")
	for _, p := range pairs {
		sb.WriteString(fmt.Sprintf("%-12s | %8.2f %8.3f %8.3f | %10.1f %8.2f %8.1f | %6d %7.1f\n",
			p.FigureID,
			p.GDB.TotalMS, p.GDB.PerObjMS, p.GDB.PerKBMS,
			p.KGDB.TotalMS, p.KGDB.PerObjMS, p.KGDB.PerKBMS,
			p.GDB.Objects, p.GDB.KBytes))
	}
	return sb.String()
}

// ShapeChecks verifies the qualitative claims of the paper's §5.4 against
// measured pairs, returning human-readable failures (empty = all hold):
//
//  1. KGDB is dramatically slower than GDB-QEMU for every figure;
//  2. per-object cost on KGDB is orders of magnitude above GDB's;
//  3. figure cost ranks roughly with read-transaction count (the
//     C-expression evaluation bottleneck);
//  4. small figures stay interactive even on KGDB (the paper's "acceptable
//     if we focus on smaller data structures").
func ShapeChecks(pairs []Pair) []string {
	var fails []string
	var smallOK bool
	for _, p := range pairs {
		if p.KGDB.TotalMS < p.GDB.TotalMS*10 {
			fails = append(fails, fmt.Sprintf("%s: KGDB (%.1fms) not >=10x GDB (%.1fms)",
				p.FigureID, p.KGDB.TotalMS, p.GDB.TotalMS))
		}
		if p.GDB.Objects != p.KGDB.Objects {
			fails = append(fails, fmt.Sprintf("%s: object counts differ (%d vs %d)",
				p.FigureID, p.GDB.Objects, p.KGDB.Objects))
		}
		if p.KGDB.TotalMS < 2000 && p.GDB.Objects > 0 {
			smallOK = true
		}
	}
	if !smallOK {
		fails = append(fails, "no figure stays under 2s on KGDB — small-structure interactivity lost")
	}
	// Rank correlation between reads and KGDB totals (claim 3).
	if tau := rankCorrelation(pairs); tau < 0.7 {
		fails = append(fails, fmt.Sprintf("KGDB cost poorly ranked by read count (tau=%.2f)", tau))
	}
	return fails
}

// rankCorrelation computes Kendall's tau between read counts and KGDB cost.
func rankCorrelation(pairs []Pair) float64 {
	type pt struct{ reads, ms float64 }
	pts := make([]pt, len(pairs))
	for i, p := range pairs {
		pts[i] = pt{float64(p.KGDB.Reads), p.KGDB.TotalMS}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].reads < pts[j].reads })
	concordant, discordant := 0, 0
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			switch {
			case pts[i].ms < pts[j].ms:
				concordant++
			case pts[i].ms > pts[j].ms:
				discordant++
			}
		}
	}
	total := concordant + discordant
	if total == 0 {
		return 1
	}
	return float64(concordant-discordant) / float64(total)
}
