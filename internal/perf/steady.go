// Steady-state personality: the incremental re-extraction experiment. One
// cold round extracts the full figure workspace over the modeled KGDB link;
// the kernel then performs one small mutation (a Dirty-Pipe write step), the
// snapshot advances a generation, and a second round re-extracts everything
// through the incremental pipeline. The headline number is the steady round's
// link cost as a fraction of the cold round's — the price of staying live
// across stop events instead of re-pulling the world.
package perf

import (
	"time"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
	"visualinux/internal/target"
	"visualinux/internal/vclstdlib"
	"visualinux/internal/viewcl"
)

// SteadyRow is one figure's cold vs steady-state comparison. Costs are pure
// virtual link time (the latency model's clock), so rows are byte-stable
// across runs and machines.
type SteadyRow struct {
	FigureID string  `json:"figure"`
	Objects  int     `json:"objects"`
	ColdMS   float64 `json:"cold_kgdb_ms"`
	SteadyMS float64 `json:"steady_kgdb_ms"`
	// Reused reports whole-figure reuse: the steady round proved the
	// figure's read set untouched and returned the prior VPlot.
	Reused bool `json:"figure_reused"`
	// BoxReuses / BoxBuilds split the steady round's boxes (a reused
	// figure counts all its boxes as reuses).
	BoxReuses int `json:"box_reuses"`
	BoxBuilds int `json:"box_builds"`
}

// SteadyReport is the BENCH_4 document.
type SteadyReport struct {
	Rows []SteadyRow `json:"rows"` // per figure, plus a "_total" pseudo-row

	ColdTotalMS    float64 `json:"cold_total_ms"`
	SteadyTotalMS  float64 `json:"steady_total_ms"`
	SteadyFraction float64 `json:"steady_fraction"` // steady / cold
	ReuseRatio     float64 `json:"reuse_ratio"`     // steady-round boxes served without re-extraction
	FiguresReused  int     `json:"figures_reused"`
	Figures        int     `json:"figures"`

	// Snapshot-side accounting for the steady round.
	Revalidations  uint64 `json:"revalidations"`
	Promotions     uint64 `json:"promotions"`
	StaleRefetches uint64 `json:"stale_refetches"`
	SubpageFills   uint64 `json:"subpage_fills"`
}

// MeasureSteadyState runs the experiment: attach (cold extraction of every
// figure), apply one kernelsim mutation (PipeWrite on the Dirty-Pipe pipe),
// stop, advance the snapshot generation, re-extract. The kernel's simulated
// target advertises both the write journal and content hashes, so this
// measures the best path; withoutJournal disables the journal poll and
// forces every stale page through hash revalidation — the graceful-fallback
// cost when the stub lacks the dirty-ranges annex.
func MeasureSteadyState(opts kernelsim.Options, model target.LatencyModel, withoutJournal bool) (*SteadyReport, error) {
	k := kernelsim.Build(opts)
	var base target.Target = target.WithLatency(k.Target(), model)
	lt := base.(*target.Latency)
	if withoutJournal {
		base = hashOnlyTarget{base}
	}
	figs := vclstdlib.Figures()
	x := core.NewIncrementalExtractor(k, base, figs, nil)

	rows := make([]SteadyRow, len(figs))
	last := lt.VirtualElapsed()
	perFigure := func(dst func(i int) *float64) {
		x.OnFigure = func(i int, fig vclstdlib.Figure, reused bool, res *viewcl.Result) {
			now := lt.VirtualElapsed()
			*dst(i) += ms(now - last)
			last = now
			rows[i].FigureID = fig.ID
			rows[i].Objects = res.Graph.Stats.Objects
			rows[i].Reused = reused
			if reused {
				rows[i].BoxReuses = len(res.Graph.Boxes)
				rows[i].BoxBuilds = 0
			} else {
				rows[i].BoxReuses = res.BoxesReused
				rows[i].BoxBuilds = res.BoxesBuilt
			}
		}
	}

	perFigure(func(i int) *float64 { return &rows[i].ColdMS })
	if _, err := x.Round(); err != nil {
		return nil, err
	}

	// One small mutation while the target "runs", then the stop boundary.
	if err := k.PipeWrite(k.DirtyPipe, 64); err != nil {
		return nil, err
	}
	x.Advance()

	last = lt.VirtualElapsed()
	perFigure(func(i int) *float64 { return &rows[i].SteadyMS })
	if _, err := x.Round(); err != nil {
		return nil, err
	}

	rep := &SteadyReport{Figures: len(figs)}
	var reuses, builds int
	total := SteadyRow{FigureID: "_total"}
	for _, r := range rows {
		rep.ColdTotalMS += r.ColdMS
		rep.SteadyTotalMS += r.SteadyMS
		if r.Reused {
			rep.FiguresReused++
		}
		reuses += r.BoxReuses
		builds += r.BoxBuilds
		total.Objects += r.Objects
		total.ColdMS += r.ColdMS
		total.SteadyMS += r.SteadyMS
		total.BoxReuses += r.BoxReuses
		total.BoxBuilds += r.BoxBuilds
	}
	rep.Rows = append(rows, total)
	if rep.ColdTotalMS > 0 {
		rep.SteadyFraction = rep.SteadyTotalMS / rep.ColdTotalMS
	}
	if reuses+builds > 0 {
		rep.ReuseRatio = float64(reuses) / float64(reuses+builds)
	}
	snap := x.Snapshot()
	rep.Revalidations = snap.Revalidations()
	rep.Promotions = snap.Promotions()
	rep.StaleRefetches = snap.StaleRefetches()
	rep.SubpageFills, _ = snap.SubpageFills()
	return rep, nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// hashOnlyTarget hides the DirtyTracker capability of the chain below while
// keeping everything else (including PageHasher), modeling a stub that
// never advertised the dirty-ranges annex.
type hashOnlyTarget struct {
	target.Target
}

// Under exposes the chain for tracer attachment — but deliberately NOT via
// interface probing of the embedded field: type assertions on
// hashOnlyTarget itself see only Target's method set plus what's declared
// here, which is exactly the point.
func (h hashOnlyTarget) Under() target.Target { return h.Target }

func (h hashOnlyTarget) HashBlocks(addr, size uint64) ([]uint64, bool) {
	return target.HashBlocks(h.Target, addr, size)
}

var (
	_ target.PageHasher = hashOnlyTarget{}
	_ target.Underlier  = hashOnlyTarget{}
)
