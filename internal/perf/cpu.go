package perf

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
	"visualinux/internal/vclstdlib"
	"visualinux/internal/viewcl"
)

// The CPU personality: extraction cost with the link removed. Everything
// runs against the fast in-process target, so the numbers isolate the
// evaluator itself — the compiled closure-chain engine vs the tree-walking
// interpreter it replaced (kept behind Interp.Interpret as the baseline).
// Both engines run in the same process invocation, so the speedup column is
// a same-run internal ratio, stable across machines; the absolute ms values
// are still wall-clock and should not be compared across hosts.

// CPURow is one figure's compiled-vs-interpreted cold-extraction cost.
type CPURow struct {
	FigureID          string  `json:"figure"`
	Objects           int     `json:"objects"`
	InterpretedMS     float64 `json:"interpreted_cpu_ms"` // per cold run
	CompiledMS        float64 `json:"compiled_cpu_ms"`    // per cold run
	Speedup           float64 `json:"cpu_speedup"`
	InterpretedAllocs float64 `json:"interpreted_allocs_op"`
	CompiledAllocs    float64 `json:"compiled_allocs_op"`
}

// CPUReport is the full BENCH_6 shape: per-figure cold costs for both
// engines plus the steady-state allocation figure — an incremental-extractor
// round over an unchanged target, the serving path a live session sits in
// between mutations.
type CPUReport struct {
	Rows []CPURow `json:"rows"`

	InterpretedTotalMS float64 `json:"interpreted_total_ms"`
	CompiledTotalMS    float64 `json:"compiled_total_ms"`
	// Speedup = interpreted total / compiled total, measured in one run.
	Speedup float64 `json:"cpu_speedup"`

	// The pinned steady-state probe: extractor rounds with nothing changed.
	SteadyFigure      string  `json:"steady_figure"`
	SteadyRoundMS     float64 `json:"steady_round_ms"`
	SteadyRoundAllocs float64 `json:"steady_round_allocs_op"`
}

// cpuMeasure times iters calls of f on the live heap: ns/op from the wall
// clock, allocs/op from the runtime's malloc counter. Single-threaded
// benchmark code, so the global counter is ours. The batch runs three times
// and the fastest batch wins — wall-clock minima are the standard defense
// against scheduler and GC noise on shared machines, and the same-run
// speedup ratio the report gates on needs both engines measured at their
// respective minima.
func cpuMeasure(iters int, f func() error) (msPerOp, allocsPerOp float64, err error) {
	best := math.Inf(1)
	var allocs float64
	for batch := 0; batch < 3; batch++ {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			if err := f(); err != nil {
				return 0, 0, err
			}
		}
		el := time.Since(t0)
		runtime.ReadMemStats(&m1)
		if ms := float64(el.Nanoseconds()) / 1e6 / float64(iters); ms < best {
			best = ms
			allocs = float64(m1.Mallocs-m0.Mallocs) / float64(iters)
		}
	}
	return best, allocs, nil
}

// MeasureCPU produces the CPU report over all Table 2 figures. iters is the
// per-figure sample count (0 = a default that keeps the whole sweep under a
// few seconds). steadyFigure pins the figure used for the steady-state
// allocation probe ("" = 7-1, the CFS runqueue).
func MeasureCPU(opts kernelsim.Options, iters int, steadyFigure string) (*CPUReport, error) {
	if iters <= 0 {
		iters = 10
	}
	if steadyFigure == "" {
		steadyFigure = "7-1"
	}
	k := kernelsim.Build(opts)
	rep := &CPUReport{}

	for _, fig := range vclstdlib.Figures() {
		fig := fig
		row := CPURow{FigureID: fig.ID}

		// Compiled engine: program lowered once (first run), then each
		// iteration is a cold extraction through the closure chains.
		cs := core.SessionOver(k, k.Target())
		run := func(in *viewcl.Interp) error {
			res, err := in.RunSource(fig.ID, fig.Program)
			if err == nil {
				row.Objects = len(res.Graph.Boxes)
			}
			return err
		}
		if err := run(cs.Interp); err != nil { // compile + warm-up, untimed
			return nil, fmt.Errorf("figure %s (compiled): %w", fig.ID, err)
		}
		ms, allocs, err := cpuMeasure(iters, func() error { return run(cs.Interp) })
		if err != nil {
			return nil, fmt.Errorf("figure %s (compiled): %w", fig.ID, err)
		}
		row.CompiledMS, row.CompiledAllocs = ms, allocs

		// Tree-walking oracle: parses and walks the AST every round, the
		// pre-compilation cost model.
		is := core.SessionOver(k, k.Target())
		is.Interp.Interpret = true
		if err := run(is.Interp); err != nil {
			return nil, fmt.Errorf("figure %s (interpreted): %w", fig.ID, err)
		}
		ms, allocs, err = cpuMeasure(iters, func() error { return run(is.Interp) })
		if err != nil {
			return nil, fmt.Errorf("figure %s (interpreted): %w", fig.ID, err)
		}
		row.InterpretedMS, row.InterpretedAllocs = ms, allocs

		if row.CompiledMS > 0 {
			row.Speedup = row.InterpretedMS / row.CompiledMS
		}
		rep.Rows = append(rep.Rows, row)
		rep.CompiledTotalMS += row.CompiledMS
		rep.InterpretedTotalMS += row.InterpretedMS
	}
	if rep.CompiledTotalMS > 0 {
		rep.Speedup = rep.InterpretedTotalMS / rep.CompiledTotalMS
	}

	// Steady-state probe: a fresh kernel, the full incremental pipeline
	// (snapshot + memo + panes), one cold round, then rounds with nothing
	// changed — the figure-level reuse path a quiescent session serves from.
	fig, ok := vclstdlib.FigureByID(steadyFigure)
	if !ok {
		return nil, fmt.Errorf("steady figure %q not in Table 2", steadyFigure)
	}
	sk := kernelsim.Build(opts)
	x := core.NewIncrementalExtractor(sk, sk.Target(), []vclstdlib.Figure{fig}, nil)
	for i := 0; i < 2; i++ { // cold round + one warm round, untimed
		if _, err := x.Round(); err != nil {
			return nil, fmt.Errorf("steady warm-up: %w", err)
		}
	}
	steadyIters := iters * 5
	ms, allocs, err := cpuMeasure(steadyIters, func() error {
		_, err := x.Round()
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("steady rounds: %w", err)
	}
	rep.SteadyFigure = steadyFigure
	rep.SteadyRoundMS = ms
	rep.SteadyRoundAllocs = allocs
	return rep, nil
}

// FormatCPU renders the report as the perfbench console table.
func FormatCPU(rep *CPUReport) string {
	out := fmt.Sprintf("%-12s | %12s %12s %8s | %12s %12s\n",
		"figure", "interp(ms)", "compiled(ms)", "speedup", "allocs(int)", "allocs(comp)")
	for _, r := range rep.Rows {
		out += fmt.Sprintf("%-12s | %12.3f %12.3f %7.1fx | %12.0f %12.0f\n",
			r.FigureID, r.InterpretedMS, r.CompiledMS, r.Speedup,
			r.InterpretedAllocs, r.CompiledAllocs)
	}
	out += fmt.Sprintf("total: interpreted %.1f ms vs compiled %.1f ms — %.1fx\n",
		rep.InterpretedTotalMS, rep.CompiledTotalMS, rep.Speedup)
	out += fmt.Sprintf("steady rounds (%s, unchanged target): %.4f ms/op, %.0f allocs/op\n",
		rep.SteadyFigure, rep.SteadyRoundMS, rep.SteadyRoundAllocs)
	return out
}
