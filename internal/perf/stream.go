// Stream personality: the fan-out latency experiment behind BENCH_7. A
// live server (kernelsim kernel, incremental extractor, stream broker) is
// driven through free-run stop events while broker-level clients consume
// the pane deltas — no HTTP in the loop, so the numbers are pure publish →
// deliver cost, not TCP noise. Each mix pairs fast consumers (drain
// immediately, record push latency) with slow ones (sleep per frame, forced
// into latest-wins coalescing); the headline columns are the worst fast
// client's p95 push latency, the minimum fast delivery ratio, and proof
// that slow consumers actually coalesced instead of stalling the plane.
package perf

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
	"visualinux/internal/server"
	"visualinux/internal/stream"
	"visualinux/internal/vclstdlib"
)

// StreamMixRow is one client mix's measurement.
type StreamMixRow struct {
	Mix    string `json:"mix"` // e.g. "15fast+1slow"
	Fast   int    `json:"fast_clients"`
	Slow   int    `json:"slow_clients"`
	Rounds int    `json:"rounds"`
	Frames uint64 `json:"frames_published"`

	// FastP50PushMS pools every fast delivery; FastP95PushMS is the WORST
	// fast client's p95 — the guarantee a well-behaved consumer gets even
	// while a slow sibling is coalescing.
	FastP50PushMS float64 `json:"fast_p50_push_ms"`
	FastP95PushMS float64 `json:"fast_p95_push_ms"`

	// FastDeliveryRatio is the minimum sent/(sent+dropped) over the fast
	// clients: 1.0 means no fast consumer ever lost a frame to coalescing.
	FastDeliveryRatio float64 `json:"fast_delivery_ratio"`

	SlowCoalesced uint64 `json:"slow_coalesced"`
	SlowDropped   uint64 `json:"slow_dropped"`
}

// StreamReport is the BENCH_7 document. The top-level columns are the
// across-mix worst cases, which is what benchguard gates on.
type StreamReport struct {
	Rows     []StreamMixRow `json:"rows"`
	QueueCap int            `json:"queue_cap"`
	Rounds   int            `json:"rounds"`

	P95PushMS         float64 `json:"p95_push_ms"`         // worst fast p95 across mixes
	FastDeliveryRatio float64 `json:"fast_delivery_ratio"` // min across mixes
	SlowCoalesced     uint64  `json:"slow_coalesced"`      // total across mixes
}

// streamMixes are the paper-style client populations: all-fast (baseline),
// one straggler among many (the common deployment), and an even split (the
// stress shape).
var streamMixes = []struct{ fast, slow int }{
	{16, 0},
	{15, 1},
	{8, 8},
}

// MeasureStream runs every mix and folds the worst cases into the headline
// columns. rounds <= 0 selects the default (enough stop events that a slow
// consumer must overflow its queue and coalesce).
func MeasureStream(opts kernelsim.Options, rounds int) (*StreamReport, error) {
	if rounds <= 0 {
		rounds = 60
	}
	rep := &StreamReport{Rounds: rounds, QueueCap: stream.DefaultQueueCap, FastDeliveryRatio: 1}
	for _, mix := range streamMixes {
		row, err := runStreamMix(opts, mix.fast, mix.slow, rounds)
		if err != nil {
			return nil, fmt.Errorf("mix %dfast+%dslow: %w", mix.fast, mix.slow, err)
		}
		rep.Rows = append(rep.Rows, row)
		if row.FastP95PushMS > rep.P95PushMS {
			rep.P95PushMS = row.FastP95PushMS
		}
		if row.FastDeliveryRatio < rep.FastDeliveryRatio {
			rep.FastDeliveryRatio = row.FastDeliveryRatio
		}
		rep.SlowCoalesced += row.SlowCoalesced
	}
	return rep, nil
}

// roundInterval paces the free-run stop events. Without it the tight loop
// publishes at microsecond cadence — faster than the scheduler can wake 16
// consumer goroutines — and even fast clients overflow, which measures the
// Go scheduler, not the plane. With ~a dozen panes changing per round the
// queue cap is barely one round deep, so the interval also needs enough
// headroom that a single scheduler hiccup doesn't overflow a fast client;
// 5ms is still far quicker than any real stop cadence.
const roundInterval = 5 * time.Millisecond

// slowFrameDelay is how long a slow consumer sits on each frame — one
// round's worth of frames takes it ~a dozen intervals to clear, so its
// queue must overflow and coalesce.
const slowFrameDelay = 5 * time.Millisecond

// runStreamMix builds a fresh live server, subscribes the mix's clients at
// the broker level, drives `rounds` free-run stop events through
// StreamRound, and reads the verdict out of the broker's health snapshot
// plus the latencies the fast consumers recorded.
func runStreamMix(opts kernelsim.Options, fast, slow, rounds int) (StreamMixRow, error) {
	row := StreamMixRow{
		Mix: fmt.Sprintf("%dfast+%dslow", fast, slow), Fast: fast, Slow: slow, Rounds: rounds,
	}
	k := kernelsim.Build(opts)
	o := obs.NewObserver()
	figs := vclstdlib.Figures()
	x := core.NewIncrementalExtractor(k, k.Target(), figs, o)
	if _, err := x.Round(); err != nil {
		return row, err
	}
	srv := server.New(x.Session)
	b := srv.Broker()

	ctx := context.Background()
	var wg sync.WaitGroup
	fastIDs := make(map[int]bool, fast)
	fastLats := make([][]time.Duration, fast)
	clients := make([]*stream.Client, 0, fast+slow)
	for i := 0; i < fast; i++ {
		c := b.Subscribe("json", nil)
		fastIDs[c.ID] = true
		clients = append(clients, c)
		wg.Add(1)
		go func(i int, c *stream.Client) {
			defer wg.Done()
			var lats []time.Duration
			for {
				f, ok := c.Next(ctx)
				if !ok {
					break
				}
				lats = append(lats, time.Since(f.Published()))
			}
			fastLats[i] = lats // distinct index per goroutine; read after Wait
		}(i, c)
	}
	for i := 0; i < slow; i++ {
		c := b.Subscribe("json", nil)
		clients = append(clients, c)
		wg.Add(1)
		go func(c *stream.Client) {
			defer wg.Done()
			for {
				if _, ok := c.Next(ctx); !ok {
					break
				}
				time.Sleep(slowFrameDelay)
			}
		}(c)
	}

	w := kernelsim.NewWorkload(k)
	for i := 0; i < rounds; i++ {
		if err := srv.StreamRound(func() error {
			w.Step()
			x.Advance()
			_, err := x.Round()
			return err
		}); err != nil {
			return row, err
		}
		time.Sleep(roundInterval)
	}

	// Let the fast consumers drain before reading the health snapshot, so
	// their sent counters cover every enqueued frame.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		settled := true
		for _, c := range b.Health().Clients {
			if fastIDs[c.ID] && c.QueueDepth > 0 {
				settled = false
				break
			}
		}
		if settled {
			break
		}
		time.Sleep(time.Millisecond)
	}
	health := b.Health()
	row.Frames = b.Seq()
	row.FastDeliveryRatio = 1
	for _, c := range health.Clients {
		if fastIDs[c.ID] {
			if total := c.FramesSent + c.FramesDropped; total > 0 {
				if r := float64(c.FramesSent) / float64(total); r < row.FastDeliveryRatio {
					row.FastDeliveryRatio = r
				}
			}
		} else {
			row.SlowCoalesced += c.FramesCoalesced
			row.SlowDropped += c.FramesDropped
		}
	}
	for _, c := range clients {
		b.Unsubscribe(c)
	}
	wg.Wait()

	var pooled []time.Duration
	for _, lats := range fastLats {
		pooled = append(pooled, lats...)
		if p := percentileMS(lats, 95); p > row.FastP95PushMS {
			row.FastP95PushMS = p
		}
	}
	row.FastP50PushMS = percentileMS(pooled, 50)
	return row, nil
}

// percentileMS is the pth percentile of the samples in milliseconds, 0 when
// there are none.
func percentileMS(samples []time.Duration, p int) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return ms(sorted[(len(sorted)*p)/100])
}

// FormatStream renders the report as the console table perfbench prints.
func FormatStream(rep *StreamReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s | %10s %10s %9s | %9s %9s | %8s\n",
		"mix", "p50(ms)", "p95(ms)", "delivery", "coalesced", "dropped", "frames")
	for _, r := range rep.Rows {
		fmt.Fprintf(&sb, "%-14s | %10.2f %10.2f %9.4f | %9d %9d | %8d\n",
			r.Mix, r.FastP50PushMS, r.FastP95PushMS, r.FastDeliveryRatio,
			r.SlowCoalesced, r.SlowDropped, r.Frames)
	}
	fmt.Fprintf(&sb, "worst fast p95 %.2f ms; min fast delivery %.4f; %d slow frames coalesced (queue cap %d, %d rounds/mix)\n",
		rep.P95PushMS, rep.FastDeliveryRatio, rep.SlowCoalesced, rep.QueueCap, rep.Rounds)
	return sb.String()
}
