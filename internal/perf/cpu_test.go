package perf

import (
	"testing"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
	"visualinux/internal/vclstdlib"
)

// The CPU personality's own tests: the report is structurally sound, the
// steady-state serving path stays (near) allocation-free, and the compiled
// engine's allocation footprint is far below the interpreter's. Wall-clock
// ratios are asserted only by the benchguard gate over perfbench -cpujson
// output, where best-of-batch measurement de-noises them; allocation counts
// are deterministic enough to assert here directly.

func TestMeasureCPUReport(t *testing.T) {
	rep, err := MeasureCPU(kernelsim.Options{}, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(rep.Rows), len(vclstdlib.Figures()); got != want {
		t.Fatalf("rows = %d, want %d", got, want)
	}
	for _, r := range rep.Rows {
		if r.CompiledMS <= 0 || r.InterpretedMS <= 0 {
			t.Errorf("%s: non-positive cost (interp %.4f, compiled %.4f)", r.FigureID, r.InterpretedMS, r.CompiledMS)
		}
		if r.Objects == 0 {
			t.Errorf("%s: no objects extracted", r.FigureID)
		}
	}
	if rep.Speedup <= 0 {
		t.Errorf("total speedup = %.2f, want > 0", rep.Speedup)
	}
	if rep.SteadyFigure != "7-1" {
		t.Errorf("steady figure = %q, want 7-1", rep.SteadyFigure)
	}
	t.Log("\n" + FormatCPU(rep))
}

// TestSteadyRoundAllocs pins the zero-alloc steady state: an incremental
// extractor round over an unchanged target serves retained figures and must
// not allocate beyond trivial bookkeeping.
func TestSteadyRoundAllocs(t *testing.T) {
	fig, ok := vclstdlib.FigureByID("7-1")
	if !ok {
		t.Fatal("figure 7-1 missing")
	}
	k := kernelsim.Build(kernelsim.Options{})
	x := core.NewIncrementalExtractor(k, k.Target(), []vclstdlib.Figure{fig}, nil)
	for i := 0; i < 2; i++ { // cold round + warm-up
		if _, err := x.Round(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := x.Round(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 16 {
		t.Errorf("steady round allocates %.0f objects/op, want <= 16", allocs)
	}
}

// TestCompiledColdAllocs asserts the compiled engine's cold-extraction
// allocation footprint sits well below the tree-walking interpreter's on the
// same figure — the arena/pool work is what keeps the steady state quiet.
func TestCompiledColdAllocs(t *testing.T) {
	fig, ok := vclstdlib.FigureByID("7-1")
	if !ok {
		t.Fatal("figure 7-1 missing")
	}
	k := kernelsim.Build(kernelsim.Options{})

	run := func(interpret bool) float64 {
		s := core.SessionOver(k, k.Target())
		s.Interp.Interpret = interpret
		if _, err := s.Interp.RunSource(fig.ID, fig.Program); err != nil { // warm-up
			t.Fatal(err)
		}
		return testing.AllocsPerRun(20, func() {
			if _, err := s.Interp.RunSource(fig.ID, fig.Program); err != nil {
				t.Fatal(err)
			}
		})
	}
	compiled, interpreted := run(false), run(true)
	if compiled*2 >= interpreted {
		t.Errorf("compiled cold run allocates %.0f objects/op vs interpreted %.0f — want < half", compiled, interpreted)
	}
	t.Logf("cold allocs/op: compiled %.0f, interpreted %.0f", compiled, interpreted)
}

// BenchmarkCompiledCold sweeps all Table 2 figures per iteration through the
// compiled closure-chain engine (the pprof entry point for the extraction
// core).
func BenchmarkCompiledCold(b *testing.B) {
	benchCold(b, false)
}

// BenchmarkInterpretedCold is the same sweep through the tree-walking
// interpreter kept behind Interp.Interpret — the pre-compilation baseline.
func BenchmarkInterpretedCold(b *testing.B) {
	benchCold(b, true)
}

func benchCold(b *testing.B, interpret bool) {
	k := kernelsim.Build(kernelsim.Options{})
	s := core.SessionOver(k, k.Target())
	s.Interp.Interpret = interpret
	figs := vclstdlib.Figures()
	for _, f := range figs {
		if _, err := s.Interp.RunSource(f.ID, f.Program); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range figs {
			if _, err := s.Interp.RunSource(f.ID, f.Program); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSteadyRoundReuse measures the quiescent serving path: extractor
// rounds over an unchanged target, where every figure is served whole from
// its prior result — the path the zero-alloc work pins.
func BenchmarkSteadyRoundReuse(b *testing.B) {
	fig, ok := vclstdlib.FigureByID("7-1")
	if !ok {
		b.Fatal("figure 7-1 missing")
	}
	k := kernelsim.Build(kernelsim.Options{})
	x := core.NewIncrementalExtractor(k, k.Target(), []vclstdlib.Figure{fig}, nil)
	for i := 0; i < 2; i++ {
		if _, err := x.Round(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := x.Round(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSteadyRoundCompiled measures a live steady round: one small
// mutation and a stop boundary per iteration, so dirtied figures re-extract
// through their memos with the compiled engine underneath.
func BenchmarkSteadyRoundCompiled(b *testing.B) {
	benchSteadyMutating(b, false)
}

// BenchmarkSteadyRoundInterpreted is the same rounds with the extractor's
// sessions forced onto the tree-walking interpreter.
func BenchmarkSteadyRoundInterpreted(b *testing.B) {
	benchSteadyMutating(b, true)
}

func benchSteadyMutating(b *testing.B, interpret bool) {
	k := kernelsim.Build(kernelsim.Options{})
	x := core.NewIncrementalExtractor(k, k.Target(), vclstdlib.Figures(), nil)
	x.SetInterpret(interpret)
	for i := 0; i < 2; i++ {
		if _, err := x.Round(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.PipeWrite(k.DirtyPipe, 64); err != nil {
			b.Fatal(err)
		}
		x.Advance()
		if _, err := x.Round(); err != nil {
			b.Fatal(err)
		}
	}
}
