package perf

import (
	"testing"

	"visualinux/internal/kernelsim"
	"visualinux/internal/target"
)

// The acceptance bar for the incremental pipeline: after one small kernel
// mutation, re-extracting the whole workspace must cost at most 20% of the
// cold cached extraction on the modeled KGDB link — with the write journal
// (dirty-ranges fast path) and without it (hash revalidation fallback).
func TestSteadyStateFraction(t *testing.T) {
	for _, tc := range []struct {
		name           string
		withoutJournal bool
	}{
		{"journal", false},
		{"hash-fallback", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := MeasureSteadyState(kernelsim.Options{}, target.DefaultKGDB, tc.withoutJournal)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ColdTotalMS <= 0 {
				t.Fatalf("cold round cost %v ms, want > 0", rep.ColdTotalMS)
			}
			if rep.SteadyFraction > 0.20 {
				t.Errorf("steady round = %.1f%% of cold (%.2f of %.2f ms), want <= 20%%",
					rep.SteadyFraction*100, rep.SteadyTotalMS, rep.ColdTotalMS)
			}
			if rep.FiguresReused == 0 {
				t.Error("no figure was served whole from the prior round")
			}
			if rep.FiguresReused >= rep.Figures {
				t.Error("the mutated figure should have re-extracted, but every figure was reused whole")
			}
			if rep.ReuseRatio < 0.5 {
				t.Errorf("box reuse ratio %.2f, want >= 0.5", rep.ReuseRatio)
			}
			if tc.withoutJournal && rep.Promotions != 0 {
				t.Errorf("journal disabled but %d pages were journal-promoted", rep.Promotions)
			}
			if !tc.withoutJournal && rep.Promotions == 0 {
				t.Error("journal enabled but no pages were promoted clean")
			}
		})
	}
}

// Determinism: two runs of the same personality must produce identical
// reports — the bench JSON is byte-stable because every cost is virtual.
func TestSteadyStateDeterministic(t *testing.T) {
	a, err := MeasureSteadyState(kernelsim.Options{}, target.DefaultKGDB, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureSteadyState(kernelsim.Options{}, target.DefaultKGDB, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row count differs: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Errorf("row %d differs:\n  %+v\n  %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}
