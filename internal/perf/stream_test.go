package perf

import (
	"testing"

	"visualinux/internal/kernelsim"
)

// TestMeasureStreamShape runs the fan-out personality at a reduced round
// count and checks the report's invariants: every mix measured, fast
// consumers losing (essentially) nothing, latencies recorded, and — with
// enough rounds against the default queue cap — the slow consumers forced
// into coalescing rather than stalling the publisher.
func TestMeasureStreamShape(t *testing.T) {
	rep, err := MeasureStream(kernelsim.Options{}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(streamMixes) {
		t.Fatalf("rows %d, want %d", len(rep.Rows), len(streamMixes))
	}
	for _, r := range rep.Rows {
		if r.Frames == 0 {
			t.Fatalf("%s: no frames published", r.Mix)
		}
		if r.FastP95PushMS <= 0 {
			t.Fatalf("%s: no fast push latencies recorded", r.Mix)
		}
		if r.FastDeliveryRatio < 0.999 {
			t.Fatalf("%s: fast delivery ratio %v", r.Mix, r.FastDeliveryRatio)
		}
		if r.Slow == 0 && (r.SlowCoalesced != 0 || r.SlowDropped != 0) {
			t.Fatalf("%s: slow counters without slow clients: %+v", r.Mix, r)
		}
	}
	if rep.P95PushMS <= 0 {
		t.Fatalf("headline p95 %v", rep.P95PushMS)
	}
	if rep.SlowCoalesced == 0 {
		t.Fatal("slow consumers never coalesced — backpressure path unexercised")
	}
	if out := FormatStream(rep); out == "" {
		t.Fatal("empty table")
	}
}
