package viewql_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"visualinux/internal/expr"
	"visualinux/internal/graph"
	"visualinux/internal/kernelsim"
	"visualinux/internal/viewcl"
	"visualinux/internal/viewql"
)

// extract builds a kernel and runs a ViewCL program, returning the graph.
func extract(t *testing.T, src string) (*kernelsim.Kernel, *graph.Graph) {
	t.Helper()
	k := kernelsim.Build(kernelsim.Options{})
	env := expr.NewEnv(k.Target())
	kernelsim.RegisterHelpers(env)
	in := viewcl.New(env)
	res, err := in.RunSource("test", src)
	if err != nil {
		t.Fatalf("viewcl: %v", err)
	}
	return k, res.Graph
}

const taskTree = `
define MM as Box<mm_struct> [
    Text map_count
    Text<u64:x> mmap_base
]
define Task as Box<task_struct> {
    :default [
        Text pid, comm
        Text ppid: ${@this->parent->pid}
        Link mm -> MM(${@this->mm})
        Container children: List(${@this->children}).forEach |n| {
            yield Task<task_struct.sibling>(@n)
        }
    ]
    :default => :show_mm [
        Text<u64:x> pgd: ${@this->mm != 0 ? @this->mm->pgd : 0}
    ]
}
root = Task(${&init_task})
plot @root
`

func TestSelectWhere(t *testing.T) {
	_, g := extract(t, taskTree)
	e := viewql.NewEngine(g)

	// Paper §1: focus on process #1 and its direct children.
	err := e.Apply(`
task_all = SELECT task_struct FROM *
task_1 = SELECT task_struct FROM task_all WHERE pid == 1 OR ppid == 1
UPDATE task_all \ task_1 WITH collapsed: true
`)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	all := e.Set("task_all")
	sel := e.Set("task_1")
	if len(all) == 0 || len(sel) == 0 || len(sel) >= len(all) {
		t.Fatalf("bad set sizes: all=%d sel=%d", len(all), len(sel))
	}
	// Everything not selected must be collapsed, everything selected not.
	selSet := map[viewql.Ref]bool{}
	for _, r := range sel {
		selSet[r] = true
	}
	for _, r := range all {
		b, _ := g.Get(r.BoxID)
		if selSet[r] && b.Collapsed() {
			t.Errorf("%s should not be collapsed", b.ID)
		}
		if !selSet[r] && !b.Collapsed() {
			t.Errorf("%s should be collapsed", b.ID)
		}
	}
}

func TestUpdateView(t *testing.T) {
	_, g := extract(t, taskTree)
	e := viewql.NewEngine(g)
	// Paper §2.3: user threads get the show_mm view.
	err := e.Apply(`
user_threads = SELECT task_struct FROM * WHERE mm != NULL
UPDATE user_threads WITH view: show_mm
`)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	n := 0
	for _, b := range g.ByType("task_struct") {
		mm, _ := b.Member("mm")
		if mm.TargetID != "" {
			n++
			if b.Attrs[graph.AttrView] != "show_mm" {
				t.Errorf("%s: view = %q", b.ID, b.Attrs[graph.AttrView])
			}
			if b.CurrentView().Name != "show_mm" {
				t.Errorf("%s: current view not resolved", b.ID)
			}
		} else if b.Attrs[graph.AttrView] == "show_mm" {
			t.Errorf("%s: kernel thread got show_mm", b.ID)
		}
	}
	if n == 0 {
		t.Fatalf("no user threads matched")
	}
}

func TestStringWhereAndComparisons(t *testing.T) {
	_, g := extract(t, taskTree)
	e := viewql.NewEngine(g)
	if err := e.Apply(`
workers = SELECT task_struct FROM * WHERE comm == "workload-0"
high = SELECT task_struct FROM * WHERE pid >= 100 AND pid < 104
`); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if len(e.Set("workers")) != 2 { // leader + 1 thread share comm
		t.Errorf("workers = %d, want 2", len(e.Set("workers")))
	}
	if len(e.Set("high")) != 4 {
		t.Errorf("high = %d, want 4", len(e.Set("high")))
	}
}

func TestSetOperationsAndReachable(t *testing.T) {
	_, g := extract(t, taskTree)
	e := viewql.NewEngine(g)
	if err := e.Apply(`
a = SELECT task_struct FROM * WHERE pid <= 5
b = SELECT task_struct FROM * WHERE pid >= 3
i = SELECT task_struct FROM a & b
u = SELECT task_struct FROM a | b
d = SELECT task_struct FROM a \ b
`); err != nil {
		t.Fatalf("apply: %v", err)
	}
	na, nb := len(e.Set("a")), len(e.Set("b"))
	ni, nu, nd := len(e.Set("i")), len(e.Set("u")), len(e.Set("d"))
	if ni+nu != na+nb {
		t.Errorf("inclusion-exclusion violated: |a|=%d |b|=%d |i|=%d |u|=%d", na, nb, ni, nu)
	}
	if nd != na-ni {
		t.Errorf("difference wrong: %d != %d-%d", nd, na, ni)
	}

	// REACHABLE from init's mm covers the MM box but no tasks.
	if err := e.Apply(`
init = SELECT task_struct FROM * WHERE pid == 1
mms = SELECT mm_struct FROM REACHABLE(init)
`); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if len(e.Set("mms")) == 0 {
		t.Errorf("no mm reachable from init")
	}
}

func TestItemSelection(t *testing.T) {
	_, g := extract(t, taskTree)
	e := viewql.NewEngine(g)
	// Collapse the children container member of every task (the paper's
	// "SELECT maple_node.slots FROM *" pattern).
	if err := e.Apply(`
kids = SELECT task_struct.children FROM *
UPDATE kids WITH collapsed: true
`); err != nil {
		t.Fatalf("apply: %v", err)
	}
	b := g.ByType("task_struct")[0]
	it, ok := b.Member("children")
	if !ok {
		t.Fatalf("no children member")
	}
	if !it.Collapsed() {
		t.Errorf("children item not collapsed")
	}
	if b.Collapsed() {
		t.Errorf("box itself must not be collapsed")
	}
}

func TestTrimmedAndDirection(t *testing.T) {
	_, g := extract(t, taskTree)
	e := viewql.NewEngine(g)
	if err := e.Apply(`
kt = SELECT task_struct FROM * WHERE mm == NULL
UPDATE kt WITH trimmed: true
all = SELECT task_struct FROM *
UPDATE all WITH direction: vertical
`); err != nil {
		t.Fatalf("apply: %v", err)
	}
	trimmed := 0
	for _, b := range g.ByType("task_struct") {
		if b.Trimmed() {
			trimmed++
			if mm, _ := b.Member("mm"); mm.TargetID != "" {
				t.Errorf("%s trimmed despite mm", b.ID)
			}
		}
		if b.Attrs[graph.AttrDirection] != "vertical" {
			t.Errorf("%s direction not set", b.ID)
		}
	}
	if trimmed == 0 {
		t.Fatalf("nothing trimmed")
	}
}

func TestInsideOperator(t *testing.T) {
	_, g := extract(t, taskTree)
	e := viewql.NewEngine(g)
	// Tasks displayed inside init's subtree (reachable from pid 1) vs the
	// full task population.
	if err := e.Apply(`
all = SELECT task_struct FROM *
init = SELECT task_struct FROM * WHERE pid == 1
inside = SELECT task_struct FROM INSIDE(all, init)
`); err != nil {
		t.Fatalf("apply: %v", err)
	}
	nAll, nIn := len(e.Set("all")), len(e.Set("inside"))
	if nIn == 0 || nIn >= nAll {
		t.Errorf("inside = %d of %d", nIn, nAll)
	}
	// init's own children are inside; init's parent (init_task, pid 0) is
	// reachable via the parent link... our Task box links parent too, so
	// everything is mutually reachable except nothing. Just assert the
	// subset property:
	inAll := map[viewql.Ref]bool{}
	for _, r := range e.Set("all") {
		inAll[r] = true
	}
	for _, r := range e.Set("inside") {
		if !inAll[r] {
			t.Errorf("INSIDE produced non-member %v", r)
		}
	}
}

func TestErrors(t *testing.T) {
	_, g := extract(t, taskTree)
	e := viewql.NewEngine(g)
	for _, bad := range []string{
		"SELECT task_struct FROM *",           // missing destination
		"x = SELECT FROM *",                   // missing type
		"x = SELECT task_struct FROM unknown", // unknown set
		"UPDATE nosuch WITH collapsed: true",  // unknown set
		"x = SELECT task_struct FROM * WHERE", // dangling WHERE
	} {
		if err := e.Apply(bad); err == nil {
			t.Errorf("no error for %q", bad)
		}
	}
}

// TestSetAlgebraLaws: property-check the set operators against their
// mathematical definitions on random selections.
func TestSetAlgebraLaws(t *testing.T) {
	_, g := extract(t, taskTree)
	e := viewql.NewEngine(g)
	prop := func(loA, hiA, loB, hiB uint8) bool {
		a1, a2 := uint64(loA%40), uint64(loA%40)+uint64(hiA%40)
		b1, b2 := uint64(loB%40), uint64(loB%40)+uint64(hiB%40)
		src := fmt.Sprintf(`
A = SELECT task_struct FROM * WHERE pid >= %d AND pid <= %d
B = SELECT task_struct FROM * WHERE pid >= %d AND pid <= %d
U1 = SELECT task_struct FROM A | B
U2 = SELECT task_struct FROM B | A
I1 = SELECT task_struct FROM A & B
I2 = SELECT task_struct FROM B & A
D = SELECT task_struct FROM A \ B
R = SELECT task_struct FROM (A \ B) | (A & B)
`, a1, a2, b1, b2)
		if err := e.Apply(src); err != nil {
			t.Fatalf("apply: %v", err)
		}
		asSet := func(name string) map[viewql.Ref]bool {
			m := map[viewql.Ref]bool{}
			for _, r := range e.Set(name) {
				m[r] = true
			}
			return m
		}
		eq := func(x, y map[viewql.Ref]bool) bool {
			if len(x) != len(y) {
				return false
			}
			for k := range x {
				if !y[k] {
					return false
				}
			}
			return true
		}
		A, B := asSet("A"), asSet("B")
		// commutativity
		if !eq(asSet("U1"), asSet("U2")) || !eq(asSet("I1"), asSet("I2")) {
			return false
		}
		// |A| = |A\B| + |A&B|
		if len(A) != len(asSet("D"))+len(asSet("I1")) {
			return false
		}
		// (A\B) | (A&B) = A
		if !eq(asSet("R"), A) {
			return false
		}
		// union contains both
		U := asSet("U1")
		for k := range A {
			if !U[k] {
				return false
			}
		}
		for k := range B {
			if !U[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
