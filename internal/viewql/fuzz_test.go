package viewql_test

import (
	"fmt"
	"testing"

	"visualinux/internal/graph"
	"visualinux/internal/viewql"
)

// fuzzGraph builds a small synthetic graph — enough structure for SELECT,
// REACHABLE and WHERE clauses to do real work without the cost of a full
// kernel build per fuzz iteration.
func fuzzGraph() *graph.Graph {
	g := graph.New("fuzz")
	var prevID string
	for i := 0; i < 4; i++ {
		addr := uint64(0x1000 * (i + 1))
		b := g.NewBoxIn(graph.BoxID("Task", addr), "Task", "task_struct", addr)
		v := &graph.View{Name: graph.DefaultView, Items: []graph.Item{
			{Kind: graph.ItemText, Name: "pid", Value: fmt.Sprint(100 + i), Raw: uint64(100 + i), IsNum: true},
			{Kind: graph.ItemText, Name: "comm", Value: "proc", IsStr: true},
		}}
		if prevID != "" {
			v.Items = append(v.Items, graph.Item{Kind: graph.ItemLink, Name: "next", TargetID: prevID})
		}
		b.AddView(v)
		g.Add(b)
		prevID = b.ID
	}
	return g
}

// seedPrograms: one valid program plus every malformed shape the issue
// calls out — unterminated strings, nested parens, bogus set operators,
// REACHABLE arity abuse. They double as the committed fuzz corpus.
var seedPrograms = []string{
	`foo = SELECT task_struct FROM * WHERE pid > 100`,
	`foo = SELECT task_struct.pid FROM * AS p
UPDATE foo WITH color: red`,
	`foo = SELECT task_struct FROM REACHABLE(*)`,
	`foo = SELECT task_struct FROM INSIDE(*, *)`,
	`foo = SELECT task_struct FROM * WHERE comm == "unterminated`,
	`foo = SELECT task_struct FROM ((((((((((((*))))))))))))`,
	`foo = SELECT task_struct FROM * %% *`,
	`foo = SELECT task_struct FROM REACHABLE(*, *, *)`,
	`foo = SELECT task_struct FROM REACHABLE()`,
	`foo = SELECT task_struct FROM REACHABLE`,
	`UPDATE`,
	`UPDATE * WITH`,
	`UPDATE * WITH color:`,
	`= SELECT`,
	`foo = SELECT`,
	`foo = SELECT task_struct FROM`,
	`foo = SELECT task_struct FROM * WHERE`,
	`foo = SELECT task_struct FROM * WHERE pid`,
	`foo = SELECT task_struct FROM * WHERE pid >`,
	`foo = SELECT task_struct FROM * WHERE (pid > 1`,
	`foo = SELECT task_struct.`,
	`foo = SELECT task_struct->`,
	"foo = SELECT task_struct FROM * -- trailing comment",
	"\x00\xff\xfe",
	`foo = SELECT task_struct FROM * WHERE pid == 0xZZ`,
	`foo = SELECT task_struct FROM * WHERE pid == 99999999999999999999999999`,
}

// FuzzApply: Engine.Apply must never panic, whatever the program — parse
// errors yes, crashes no. Depth-limited parsing keeps "(((((..." from
// exhausting the stack (a panic recover() can't catch).
func FuzzApply(f *testing.F) {
	for _, p := range seedPrograms {
		f.Add(p)
	}
	g := fuzzGraph()
	f.Fuzz(func(t *testing.T, src string) {
		e := viewql.NewEngine(g)
		_ = e.Apply(src) // errors fine; panics/hangs are the failure mode
	})
}

// TestApplyMalformedNoPanic pins the seed corpus in the normal test run,
// so the no-panic guarantee is exercised even without -fuzz.
func TestApplyMalformedNoPanic(t *testing.T) {
	g := fuzzGraph()
	for _, src := range seedPrograms {
		e := viewql.NewEngine(g)
		_ = e.Apply(src)
	}
	// Deeply nested parens must come back as an error, not a stack overflow.
	deep := "foo = SELECT task_struct FROM "
	for i := 0; i < 10000; i++ {
		deep += "("
	}
	deep += "*"
	if err := viewql.NewEngine(g).Apply(deep); err == nil {
		t.Fatal("deeply nested program accepted")
	}
}

// TestReadOnlyRejectsUpdate: fleet queries run read-only against shared
// panes; UPDATE must be refused before it mutates any box.
func TestReadOnlyRejectsUpdate(t *testing.T) {
	e := viewql.NewEngine(fuzzGraph())
	e.ReadOnly = true
	if err := e.Apply(`foo = SELECT task_struct FROM *`); err != nil {
		t.Fatalf("read-only SELECT: %v", err)
	}
	if e.LastSet != "foo" {
		t.Errorf("LastSet = %q, want foo", e.LastSet)
	}
	if err := e.Apply(`UPDATE foo WITH color: red`); err == nil {
		t.Fatal("read-only UPDATE accepted")
	}
}
