// Package viewql implements the View Query Language (paper §2.3, §4.2): an
// SQL-like DSL for customizing an extracted object graph. ViewQL has
// exactly two statement forms —
//
//	set = SELECT selector FROM source [AS alias] [WHERE cond]
//	UPDATE setexpr WITH attr: value [, attr: value ...]
//
// — with set operators (\ difference, & intersection, | union) and the
// built-in REACHABLE(set). Nested queries are deliberately disallowed, which
// is what makes the language simple enough for LLM synthesis (paper §2.4).
package viewql

import (
	"fmt"
	"strconv"
	"strings"

	"visualinux/internal/graph"
)

// Ref identifies a selection element: a whole box, or one member item of a
// box (selected via "type.member"). In fleet-scoped queries the merge layer
// stamps Target with the owning session's ID; single-target engines leave
// it empty. Ref stays comparable (set algebra uses map[Ref]bool keys).
type Ref struct {
	BoxID  string
	Member string // "" = the box itself
	Target string // "" = the engine's own target; set by fleet merges
}

// Engine holds the named selection sets of one customization session
// (typically one pane).
type Engine struct {
	G    *graph.Graph
	Sets map[string][]Ref

	// ReadOnly rejects UPDATE statements: fleet queries run against live
	// panes under a shared read lock, so they must not mutate box attrs.
	ReadOnly bool
	// LastSet is the destination of the most recent SELECT — the set a
	// fleet query reports when the program doesn't name one explicitly.
	LastSet string
}

// NewEngine creates an engine over g.
func NewEngine(g *graph.Graph) *Engine {
	return &Engine{G: g, Sets: make(map[string][]Ref)}
}

// Apply parses and executes a ViewQL program (multiple statements). Apply
// never panics on malformed input: parse errors are returned, and any
// residual interpreter panic is converted into an error (fuzz-enforced).
func (e *Engine) Apply(src string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("viewql: internal error: %v", r)
		}
	}()
	stmts, err := parse(src)
	if err != nil {
		return err
	}
	for _, s := range stmts {
		if err := e.exec(s); err != nil {
			return err
		}
	}
	return nil
}

// Set returns a named selection (nil if absent).
func (e *Engine) Set(name string) []Ref { return e.Sets[name] }

// --- AST ----------------------------------------------------------------------

type stmt interface{ vql() }

type selectStmt struct {
	Dest     string
	TypeName string
	Member   string // "type.member" item selection
	Deref    bool   // "type->member": select the member's target boxes
	Source   setExpr
	Alias    string
	Where    cond
}

type updateStmt struct {
	Target setExpr
	Attrs  []attrAssign
}

type attrAssign struct {
	Key   string
	Value string
}

func (*selectStmt) vql() {}
func (*updateStmt) vql() {}

type setExpr interface{ set() }

type setAll struct{}
type setName struct{ Name string }
type setReach struct{ Arg setExpr }
type setInside struct{ L, R setExpr } // INSIDE(a, b): members of a reachable from b
type setOp struct {
	Op   string // "\\", "&", "|"
	L, R setExpr
}

func (*setAll) set()    {}
func (*setName) set()   {}
func (*setReach) set()  {}
func (*setInside) set() {}
func (*setOp) set()     {}

type cond interface{ cond() }

type condOr struct{ L, R cond }
type condAnd struct{ L, R cond }
type condCmp struct {
	Member string
	Op     string
	// literal value
	IsNum  bool
	Num    uint64
	Str    string
	IsNull bool
	IsBool bool
	Bool   bool
}

func (*condOr) cond()  {}
func (*condAnd) cond() {}
func (*condCmp) cond() {}

// --- lexer ----------------------------------------------------------------------

type vtok struct {
	kind string // "ident", "num", "str", "punct", "eof"
	text string
	num  uint64
	line int
}

func lex(src string) ([]vtok, error) {
	var toks []vtok
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '-' && i+1 < len(src) && src[i+1] == '-': // SQL comment
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case isIdentByte(c):
			j := i
			for j < len(src) && (isIdentByte(src[j]) || src[j] >= '0' && src[j] <= '9') {
				j++
			}
			toks = append(toks, vtok{kind: "ident", text: src[i:j], line: line})
			i = j
		case c >= '0' && c <= '9':
			j := i
			if strings.HasPrefix(src[i:], "0x") || strings.HasPrefix(src[i:], "0X") {
				j += 2
				for j < len(src) && isHex(src[j]) {
					j++
				}
			} else {
				for j < len(src) && src[j] >= '0' && src[j] <= '9' {
					j++
				}
			}
			v, err := strconv.ParseUint(src[i:j], 0, 64)
			if err != nil {
				return nil, fmt.Errorf("viewql:%d: bad number %q", line, src[i:j])
			}
			toks = append(toks, vtok{kind: "num", num: v, text: src[i:j], line: line})
			i = j
		case c == '"' || c == '\'':
			q := c
			j := i + 1
			for j < len(src) && src[j] != q {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("viewql:%d: unterminated string", line)
			}
			toks = append(toks, vtok{kind: "str", text: src[i+1 : j], line: line})
			i = j + 1
		default:
			ops := []string{"==", "!=", "<=", ">=", "->", "\\", "&", "|", "(", ")", ",", ":", "=", "<", ">", ".", "*"}
			matched := ""
			for _, op := range ops {
				if strings.HasPrefix(src[i:], op) {
					matched = op
					break
				}
			}
			if matched == "" {
				return nil, fmt.Errorf("viewql:%d: unexpected character %q", line, c)
			}
			toks = append(toks, vtok{kind: "punct", text: matched, line: line})
			i += len(matched)
		}
	}
	toks = append(toks, vtok{kind: "eof", line: line})
	return toks, nil
}

func isIdentByte(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// --- parser ---------------------------------------------------------------------

type vparser struct {
	toks  []vtok
	pos   int
	depth int // current expression nesting (see maxParseDepth)
}

func parse(src string) ([]stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &vparser{toks: toks}
	var out []stmt
	for p.peek().kind != "eof" {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *vparser) peek() vtok { return p.toks[p.pos] }
func (p *vparser) next() vtok { t := p.toks[p.pos]; p.pos++; return t }

// maxParseDepth bounds expression nesting. Hand-written programs nest a
// couple of levels; a hostile "((((((..." would otherwise recurse once per
// paren and exhaust the goroutine stack — a panic recover() cannot catch.
const maxParseDepth = 64

func (p *vparser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return fmt.Errorf("viewql:%d: expression nested too deeply (max %d)", p.peek().line, maxParseDepth)
	}
	return nil
}

func (p *vparser) kw(word string) bool {
	t := p.peek()
	if t.kind == "ident" && strings.EqualFold(t.text, word) {
		p.pos++
		return true
	}
	return false
}

func (p *vparser) punct(text string) bool {
	t := p.peek()
	if t.kind == "punct" && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *vparser) expectPunct(text string) error {
	if !p.punct(text) {
		return fmt.Errorf("viewql:%d: expected %q, found %q", p.peek().line, text, p.peek().text)
	}
	return nil
}

func (p *vparser) ident() (string, error) {
	t := p.next()
	if t.kind != "ident" {
		return "", fmt.Errorf("viewql:%d: expected identifier, found %q", t.line, t.text)
	}
	return t.text, nil
}

func (p *vparser) stmt() (stmt, error) {
	if p.kw("UPDATE") {
		return p.update()
	}
	// name = SELECT ...
	dest, err := p.ident()
	if err != nil {
		return nil, err
	}
	if !p.punct("=") {
		return nil, fmt.Errorf("viewql:%d: expected '=' after %q", p.peek().line, dest)
	}
	if !p.kw("SELECT") {
		return nil, fmt.Errorf("viewql:%d: expected SELECT", p.peek().line)
	}
	s := &selectStmt{Dest: dest}
	s.TypeName, err = p.ident()
	if err != nil {
		return nil, err
	}
	if p.punct(".") {
		s.Member, err = p.ident()
		if err != nil {
			return nil, err
		}
	} else if p.punct("->") {
		s.Member, err = p.ident()
		if err != nil {
			return nil, err
		}
		s.Deref = true
	}
	if !p.kw("FROM") {
		return nil, fmt.Errorf("viewql:%d: expected FROM", p.peek().line)
	}
	s.Source, err = p.setExpr()
	if err != nil {
		return nil, err
	}
	if p.kw("AS") {
		s.Alias, err = p.ident()
		if err != nil {
			return nil, err
		}
	}
	if p.kw("WHERE") {
		s.Where, err = p.condOr()
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *vparser) update() (stmt, error) {
	u := &updateStmt{}
	var err error
	u.Target, err = p.setExpr()
	if err != nil {
		return nil, err
	}
	if !p.kw("WITH") {
		return nil, fmt.Errorf("viewql:%d: expected WITH", p.peek().line)
	}
	for {
		key, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		t := p.next()
		var val string
		switch t.kind {
		case "ident":
			val = t.text
		case "num":
			val = t.text
		case "str":
			val = t.text
		default:
			return nil, fmt.Errorf("viewql:%d: bad attribute value %q", t.line, t.text)
		}
		u.Attrs = append(u.Attrs, attrAssign{Key: key, Value: val})
		if !p.punct(",") {
			break
		}
	}
	return u, nil
}

func (p *vparser) setExpr() (setExpr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer func() { p.depth-- }()
	l, err := p.setTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == "punct" && (t.text == "\\" || t.text == "&" || t.text == "|") {
			p.next()
			r, err := p.setTerm()
			if err != nil {
				return nil, err
			}
			l = &setOp{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *vparser) setTerm() (setExpr, error) {
	t := p.peek()
	switch {
	case t.kind == "punct" && t.text == "*":
		p.next()
		return &setAll{}, nil
	case t.kind == "punct" && t.text == "(":
		p.next()
		e, err := p.setExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == "ident" && strings.EqualFold(t.text, "REACHABLE"):
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		arg, err := p.setExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &setReach{Arg: arg}, nil
	case t.kind == "ident" && (strings.EqualFold(t.text, "INSIDE") || strings.EqualFold(t.text, "IS_INSIDE")):
		// INSIDE(a, b): the members of a that are displayed inside b —
		// i.e. reachable from b (the paper's is_inside operator).
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		l, err := p.setExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		r, err := p.setExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &setInside{L: l, R: r}, nil
	case t.kind == "ident":
		p.next()
		return &setName{Name: t.text}, nil
	}
	return nil, fmt.Errorf("viewql:%d: expected set expression, found %q", t.line, t.text)
}

func (p *vparser) condOr() (cond, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer func() { p.depth-- }()
	l, err := p.condAnd()
	if err != nil {
		return nil, err
	}
	for p.kw("OR") {
		r, err := p.condAnd()
		if err != nil {
			return nil, err
		}
		l = &condOr{L: l, R: r}
	}
	return l, nil
}

func (p *vparser) condAnd() (cond, error) {
	l, err := p.condPrim()
	if err != nil {
		return nil, err
	}
	for p.kw("AND") {
		r, err := p.condPrim()
		if err != nil {
			return nil, err
		}
		l = &condAnd{L: l, R: r}
	}
	return l, nil
}

func (p *vparser) condPrim() (cond, error) {
	if p.punct("(") {
		c, err := p.condOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return c, nil
	}
	member, err := p.ident()
	if err != nil {
		return nil, err
	}
	for p.punct(".") {
		m, err := p.ident()
		if err != nil {
			return nil, err
		}
		member += "." + m
	}
	t := p.next()
	if t.kind != "punct" {
		return nil, fmt.Errorf("viewql:%d: expected comparison operator, found %q", t.line, t.text)
	}
	op := t.text
	if op == "=" {
		op = "==" // be forgiving, SQL-style
	}
	switch op {
	case "==", "!=", "<", ">", "<=", ">=":
	default:
		return nil, fmt.Errorf("viewql:%d: bad operator %q", t.line, op)
	}
	c := &condCmp{Member: member, Op: op}
	v := p.next()
	switch {
	case v.kind == "num":
		c.IsNum, c.Num = true, v.num
	case v.kind == "str":
		c.Str = v.text
	case v.kind == "ident" && strings.EqualFold(v.text, "NULL"):
		c.IsNull = true
	case v.kind == "ident" && (v.text == "true" || v.text == "false"):
		c.IsBool, c.Bool = true, v.text == "true"
	case v.kind == "ident":
		c.Str = v.text // bare word compares as string
	default:
		return nil, fmt.Errorf("viewql:%d: bad literal %q", v.line, v.text)
	}
	return c, nil
}

// --- execution -------------------------------------------------------------------

func (e *Engine) exec(s stmt) error {
	switch st := s.(type) {
	case *selectStmt:
		refs, err := e.evalSelect(st)
		if err != nil {
			return err
		}
		e.Sets[st.Dest] = refs
		e.LastSet = st.Dest
		return nil
	case *updateStmt:
		if e.ReadOnly {
			return fmt.Errorf("viewql: UPDATE not allowed in a read-only (fleet) query")
		}
		refs, err := e.evalSet(st.Target)
		if err != nil {
			return err
		}
		for _, a := range st.Attrs {
			e.applyAttr(refs, a)
		}
		return nil
	}
	return fmt.Errorf("viewql: unhandled statement %T", s)
}

func (e *Engine) evalSet(se setExpr) ([]Ref, error) {
	switch x := se.(type) {
	case *setAll:
		var out []Ref
		for _, b := range e.G.All() {
			out = append(out, Ref{BoxID: b.ID})
		}
		return out, nil
	case *setName:
		refs, ok := e.Sets[x.Name]
		if !ok {
			return nil, fmt.Errorf("viewql: unknown set %q", x.Name)
		}
		return refs, nil
	case *setReach:
		refs, err := e.evalSet(x.Arg)
		if err != nil {
			return nil, err
		}
		var seeds []string
		for _, r := range refs {
			if r.Member == "" {
				seeds = append(seeds, r.BoxID)
				continue
			}
			// Item ref: seed from the item's targets.
			if b, ok := e.G.Get(r.BoxID); ok {
				if it, ok := b.Member(r.Member); ok {
					if it.TargetID != "" {
						seeds = append(seeds, it.TargetID)
					}
					seeds = append(seeds, nonEmpty(it.Elems)...)
				}
			}
		}
		reach := e.G.Reachable(seeds)
		var out []Ref
		for _, id := range e.G.Order {
			if reach[id] {
				out = append(out, Ref{BoxID: id})
			}
		}
		return out, nil
	case *setInside:
		l, err := e.evalSet(x.L)
		if err != nil {
			return nil, err
		}
		r, err := e.evalSet(&setReach{Arg: x.R})
		if err != nil {
			return nil, err
		}
		in := make(map[string]bool, len(r))
		for _, ref := range r {
			if ref.Member == "" {
				in[ref.BoxID] = true
			}
		}
		var out []Ref
		for _, ref := range l {
			if in[ref.BoxID] {
				out = append(out, ref)
			}
		}
		return out, nil
	case *setOp:
		l, err := e.evalSet(x.L)
		if err != nil {
			return nil, err
		}
		r, err := e.evalSet(x.R)
		if err != nil {
			return nil, err
		}
		rset := make(map[Ref]bool, len(r))
		for _, ref := range r {
			rset[ref] = true
		}
		var out []Ref
		switch x.Op {
		case "\\":
			for _, ref := range l {
				if !rset[ref] {
					out = append(out, ref)
				}
			}
		case "&":
			for _, ref := range l {
				if rset[ref] {
					out = append(out, ref)
				}
			}
		case "|":
			seen := make(map[Ref]bool, len(l))
			for _, ref := range l {
				out = append(out, ref)
				seen[ref] = true
			}
			for _, ref := range r {
				if !seen[ref] {
					out = append(out, ref)
				}
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("viewql: unhandled set expression %T", se)
}

func nonEmpty(ss []string) []string {
	var out []string
	for _, s := range ss {
		if s != "" {
			out = append(out, s)
		}
	}
	return out
}

func (e *Engine) evalSelect(s *selectStmt) ([]Ref, error) {
	src, err := e.evalSet(s.Source)
	if err != nil {
		return nil, err
	}
	inSrc := make(map[string]bool, len(src))
	for _, r := range src {
		if r.Member == "" {
			inSrc[r.BoxID] = true
		}
	}
	var out []Ref
	for _, id := range e.G.Order {
		if !inSrc[id] {
			continue
		}
		b := e.G.Boxes[id]
		if b.TypeName != s.TypeName && b.Label != s.TypeName {
			continue
		}
		if s.Where != nil && !e.matches(b, s.Where, s.Alias) {
			continue
		}
		switch {
		case s.Member == "":
			out = append(out, Ref{BoxID: id})
		case s.Deref:
			if it, ok := b.Member(s.Member); ok {
				if it.TargetID != "" {
					out = append(out, Ref{BoxID: it.TargetID})
				}
				for _, el := range nonEmpty(it.Elems) {
					out = append(out, Ref{BoxID: el})
				}
			}
		default:
			if _, ok := b.Member(s.Member); ok {
				out = append(out, Ref{BoxID: id, Member: s.Member})
			}
		}
	}
	return out, nil
}

func (e *Engine) matches(b *graph.Box, c cond, alias string) bool {
	switch x := c.(type) {
	case *condOr:
		return e.matches(b, x.L, alias) || e.matches(b, x.R, alias)
	case *condAnd:
		return e.matches(b, x.L, alias) && e.matches(b, x.R, alias)
	case *condCmp:
		return e.compare(b, x, alias)
	}
	return false
}

func (e *Engine) compare(b *graph.Box, c *condCmp, alias string) bool {
	// Alias or self-reference compares the box identity (address).
	if c.Member == alias && alias != "" || c.Member == "this" || c.Member == "addr" {
		return cmpNum(b.Addr, c)
	}
	it, ok := b.Member(c.Member)
	if !ok {
		return false
	}
	switch {
	case c.IsNull:
		z := it.Raw == 0 && it.TargetID == "" && len(nonEmpty(it.Elems)) == 0
		if c.Op == "==" {
			return z
		}
		return !z
	case c.IsBool:
		v := it.Raw != 0 || it.Value == "true"
		if c.Op == "==" {
			return v == c.Bool
		}
		return v != c.Bool
	case c.IsNum:
		return cmpNum(it.Raw, c)
	default:
		// String comparison against the rendered text.
		switch c.Op {
		case "==":
			return it.Value == c.Str
		case "!=":
			return it.Value != c.Str
		case "<":
			return it.Value < c.Str
		case ">":
			return it.Value > c.Str
		case "<=":
			return it.Value <= c.Str
		case ">=":
			return it.Value >= c.Str
		}
	}
	return false
}

func cmpNum(v uint64, c *condCmp) bool {
	switch c.Op {
	case "==":
		return v == c.Num
	case "!=":
		return v != c.Num
	case "<":
		return int64(v) < int64(c.Num)
	case ">":
		return int64(v) > int64(c.Num)
	case "<=":
		return int64(v) <= int64(c.Num)
	case ">=":
		return int64(v) >= int64(c.Num)
	}
	return false
}

func (e *Engine) applyAttr(refs []Ref, a attrAssign) {
	for _, r := range refs {
		b, ok := e.G.Get(r.BoxID)
		if !ok {
			continue
		}
		if r.Member == "" {
			b.SetAttr(a.Key, a.Value)
			continue
		}
		for _, vn := range b.ViewSeq {
			v := b.Views[vn]
			for i := range v.Items {
				if v.Items[i].Name == r.Member {
					v.Items[i].SetAttr(a.Key, a.Value)
				}
			}
		}
	}
}
