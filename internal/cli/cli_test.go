package cli_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"visualinux/internal/cli"
	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
	"visualinux/internal/obs"
)

func newRunner(t *testing.T) (*cli.Runner, *bytes.Buffer) {
	t.Helper()
	s, k := core.NewKernelSession(kernelsim.Options{})
	var out bytes.Buffer
	r := cli.New(s, k, &out)
	// In-memory files for save/load and vplot file.
	files := map[string][]byte{}
	r.ReadFile = func(p string) ([]byte, error) {
		d, ok := files[p]
		if !ok {
			return nil, fmt.Errorf("no file %s", p)
		}
		return d, nil
	}
	r.WriteFile = func(p string, d []byte) error { files[p] = d; return nil }
	return r, &out
}

func run(t *testing.T, r *cli.Runner, out *bytes.Buffer, cmd string) string {
	t.Helper()
	out.Reset()
	if !r.Exec(cmd) {
		t.Fatalf("%q terminated the session", cmd)
	}
	return out.String()
}

func TestBasicFlow(t *testing.T) {
	r, out := newRunner(t)
	if got := run(t, r, out, "figures"); !strings.Contains(got, "7-1") {
		t.Errorf("figures: %q", got)
	}
	if got := run(t, r, out, "vplot 7-1"); !strings.Contains(got, "pane 1") {
		t.Errorf("vplot: %q", got)
	}
	if got := run(t, r, out, "vctrl show 1"); !strings.Contains(got, "RunQueue") {
		t.Errorf("show: %.200q", got)
	}
	// The run-queue figure's tasks expose ppid; chat against that member.
	if got := run(t, r, out, "vchat shrink tasks whose ppid is not 1"); !strings.Contains(got, "UPDATE") {
		t.Errorf("vchat: %q", got)
	}
	// Chatting about a member the pane does not display must fail loudly.
	if got := run(t, r, out, "vchat shrink tasks that have no address space"); !strings.Contains(got, "error") {
		t.Errorf("ungroundable chat accepted: %q", got)
	}
	if got := run(t, r, out, "help"); !strings.Contains(got, "vplot") {
		t.Errorf("help: %q", got)
	}
	if got := run(t, r, out, "nonsense"); !strings.Contains(got, "unknown command") {
		t.Errorf("unknown: %q", got)
	}
	if got := run(t, r, out, "vplot nope-figure"); !strings.Contains(got, "error") {
		t.Errorf("bad figure: %q", got)
	}
	if r.Exec("quit") {
		t.Error("quit did not terminate")
	}
}

func TestCasesAndFiles(t *testing.T) {
	r, out := newRunner(t)
	for name := range cli.CaseStudies {
		if got := run(t, r, out, "vplot case "+name); strings.Contains(got, "error") {
			t.Errorf("case %s: %q", name, got)
		}
	}
	// vplot file: via the injected filesystem.
	prog := "define T as Box<task_struct> [ Text pid ]\nx = T(${&init_task})\nplot @x\n"
	if err := r.WriteFile("prog.vcl", []byte(prog)); err != nil {
		t.Fatal(err)
	}
	if got := run(t, r, out, "vplot file prog.vcl"); strings.Contains(got, "error") {
		t.Errorf("vplot file: %q", got)
	}
	if got := run(t, r, out, "vplot file missing.vcl"); !strings.Contains(got, "error") {
		t.Errorf("missing file: %q", got)
	}
}

func TestAutoSynthesis(t *testing.T) {
	r, out := newRunner(t)
	got := run(t, r, out, "vplot auto pipe_inode_info &dirty_pipe")
	if !strings.Contains(got, "define PipeInodeInfo") {
		t.Errorf("auto: %q", got)
	}
	if !strings.Contains(got, "pane 1") {
		t.Errorf("auto did not plot: %q", got)
	}
}

func TestSaveLoad(t *testing.T) {
	r, out := newRunner(t)
	run(t, r, out, "vplot 3-4")
	run(t, r, out, "vctrl viewql 1 a = SELECT task_struct FROM * WHERE pid == 1\nUPDATE a WITH collapsed: true")
	if got := run(t, r, out, "save sess.json"); !strings.Contains(got, "saved") {
		t.Fatalf("save: %q", got)
	}

	// Fresh runner sharing the file map? Each runner has its own; copy.
	s2, k2 := core.NewKernelSession(kernelsim.Options{})
	var out2 bytes.Buffer
	r2 := cli.New(s2, k2, &out2)
	r2.ReadFile = r.ReadFile
	out2.Reset()
	r2.Exec("load sess.json")
	if got := out2.String(); !strings.Contains(got, "pane 1") {
		t.Fatalf("load: %q", got)
	}
	// The collapsed attribute survived on pid 1's box.
	p1, _ := r2.Session.Tree.Pane(1)
	restored := false
	for _, b := range p1.Graph.ByType("task_struct") {
		if pid, ok := b.Member("pid"); ok && pid.Raw == 1 && b.Collapsed() {
			restored = true
		}
	}
	if !restored {
		t.Errorf("restored pane lost customization")
	}
}

func TestVChatSpecificPane(t *testing.T) {
	r, out := newRunner(t)
	run(t, r, out, "vplot 3-4")
	run(t, r, out, "vplot 7-1")
	got := run(t, r, out, "vchat @2 shrink task_struct entries except for pid 101 and 103")
	if !strings.Contains(got, "UPDATE") {
		t.Errorf("vchat @2: %q", got)
	}
	// pane 1 untouched
	p1, _ := r.Session.Tree.Pane(1)
	for _, b := range p1.Graph.ByType("task_struct") {
		if b.Collapsed() {
			t.Errorf("pane 1 box collapsed by pane-2 chat")
		}
	}
}

func TestVTrace(t *testing.T) {
	// Without an observer, the command reports tracing is off.
	r, out := newRunner(t)
	if got := run(t, r, out, "vtrace"); !strings.Contains(got, "tracing is off") {
		t.Errorf("unobserved vtrace: %q", got)
	}

	// Observed session: vtrace before any plot, then after.
	s, k, _ := core.NewObservedKernelSession(kernelsim.Options{}, obs.NewObserver())
	var buf bytes.Buffer
	ro := cli.New(s, k, &buf)
	if got := run(t, ro, &buf, "vtrace"); !strings.Contains(got, "no extractions traced yet") {
		t.Errorf("vtrace before plots: %q", got)
	}
	if got := run(t, ro, &buf, "vplot 7-1"); !strings.Contains(got, "pane 1") {
		t.Fatalf("vplot: %q", got)
	}
	for _, cmd := range []string{"vtrace", "vtrace 1"} {
		got := run(t, ro, &buf, cmd)
		for _, want := range []string{"pane 1:", "vplot:", "target.read"} {
			if !strings.Contains(got, want) {
				t.Errorf("%s output missing %q:\n%s", cmd, want, got)
			}
		}
	}
	if got := run(t, ro, &buf, "vtrace 99"); !strings.Contains(got, "no trace for pane 99") {
		t.Errorf("vtrace 99: %q", got)
	}
	if got := run(t, ro, &buf, "vtrace bogus"); !strings.Contains(got, "usage:") {
		t.Errorf("vtrace bogus: %q", got)
	}
	if got := run(t, ro, &buf, "help"); !strings.Contains(got, "vtrace") {
		t.Errorf("help lacks vtrace: %q", got)
	}
}
