// Package cli implements the interactive debugger REPL behind
// cmd/visualinux: the v-commands plus session management, decoupled from
// stdin/stdout so the command surface is unit-testable.
package cli

import (
	"fmt"
	"io"
	"os"
	"strings"

	"visualinux/internal/core"
	"visualinux/internal/kernelsim"
	"visualinux/internal/vclstdlib"
)

// HelpText describes the REPL commands.
const HelpText = `commands:
  vplot <figure-id>       plot a stdlib ULK figure (see 'figures')
  vplot file <path>       plot a ViewCL program from a file
  vplot case <name>       quickstart | maple | stackrot | dirtypipe
  vplot auto <type> <expr>  synthesize a naive program and plot it
  vctrl split <p> [h|v]   split a pane
  vctrl viewql <p> <src>  apply ViewQL to a pane (single line)
  vctrl select <p> <set>  lift a ViewQL set into a secondary pane
  vctrl focus k=v         search all panes (e.g. focus pid=100)
  vctrl expand <p> [set]  clear collapse attributes (the click-to-expand)
  vctrl layout            show the pane tree
  vctrl show <p> [dot]    render a pane
  vchat [@pane] <text>    natural-language customization; also answers
                          "why is pane N slow?", "which pane is slowest?"
                          and "what changed since the last stop?" from
                          retained span trees
  vtrace [pane]           show the span tree of a pane's last extraction
  figures                 list figure IDs
  save <path>             persist the pane/plot state for reuse
  load <path>             restore a saved session (fresh sessions only)
  quit`

// CaseStudies maps the `vplot case` names to their programs.
var CaseStudies = map[string]string{
	"quickstart": vclstdlib.QuickstartProgram,
	"maple":      vclstdlib.MapleTreeProgram,
	"stackrot":   vclstdlib.StackRotProgram,
	"dirtypipe":  vclstdlib.DirtyPipeProgram,
}

// Runner executes REPL commands against a session.
type Runner struct {
	Session *core.Session
	Kernel  *kernelsim.Kernel
	Out     io.Writer
	// ReadFile is swappable for tests; defaults to os.ReadFile.
	ReadFile  func(string) ([]byte, error)
	WriteFile func(string, []byte) error
}

// New builds a runner with OS-backed file access.
func New(session *core.Session, k *kernelsim.Kernel, out io.Writer) *Runner {
	return &Runner{
		Session: session, Kernel: k, Out: out,
		ReadFile:  os.ReadFile,
		WriteFile: func(path string, data []byte) error { return os.WriteFile(path, data, 0o644) },
	}
}

func (r *Runner) printf(format string, args ...any) {
	fmt.Fprintf(r.Out, format, args...)
}

// Exec runs one command line; it returns false when the session should
// end (quit/exit).
func (r *Runner) Exec(line string) bool {
	line = strings.TrimSpace(line)
	if line == "" {
		return true
	}
	fields := strings.Fields(line)
	switch fields[0] {
	case "quit", "exit":
		return false
	case "help":
		r.printf("%s\n", HelpText)
	case "figures":
		r.printf("%s\n", strings.Join(core.FigureIDs(), " "))
	case "vplot":
		r.vplot(fields)
	case "vctrl":
		out, err := r.Session.VCtrl(strings.TrimSpace(strings.TrimPrefix(line, "vctrl")))
		if err != nil {
			r.printf("error: %v\n", err)
			return true
		}
		r.printf("%s\n", out)
	case "vchat":
		r.vchat(strings.TrimSpace(strings.TrimPrefix(line, "vchat")))
	case "vtrace":
		r.vtrace(fields)
	case "save":
		if len(fields) < 2 {
			r.printf("usage: save <path>\n")
			return true
		}
		data, err := r.Session.Export()
		if err == nil {
			err = r.WriteFile(fields[1], data)
		}
		if err != nil {
			r.printf("error: %v\n", err)
		} else {
			r.printf("session saved to %s\n", fields[1])
		}
	case "load":
		if len(fields) < 2 {
			r.printf("usage: load <path>\n")
			return true
		}
		data, err := r.ReadFile(fields[1])
		if err == nil {
			err = r.Session.Import(data)
		}
		if err != nil {
			r.printf("error: %v\n", err)
		} else {
			out, _ := r.Session.VCtrl("layout")
			r.printf("%s", out)
		}
	default:
		r.printf("unknown command %q (try 'help')\n", fields[0])
	}
	return true
}

func (r *Runner) vplot(fields []string) {
	if len(fields) < 2 {
		r.printf("usage: vplot <figure-id> | vplot file <path> | vplot case <name> | vplot auto <type> <expr>\n")
		return
	}
	var err error
	switch fields[1] {
	case "file":
		if len(fields) < 3 {
			r.printf("usage: vplot file <path>\n")
			return
		}
		var data []byte
		data, err = r.ReadFile(fields[2])
		if err == nil {
			_, err = r.Session.VPlot(fields[2], string(data))
		}
	case "case":
		if len(fields) < 3 {
			r.printf("cases: quickstart maple stackrot dirtypipe\n")
			return
		}
		prog, ok := CaseStudies[fields[2]]
		if !ok {
			r.printf("unknown case; try: quickstart maple stackrot dirtypipe\n")
			return
		}
		_, err = r.Session.VPlot(fields[2], prog)
	case "auto":
		if len(fields) < 4 {
			r.printf("usage: vplot auto <type> <root-expr>\n")
			return
		}
		var prog string
		_, prog, err = r.Session.VPlotAuto(fields[2], strings.Join(fields[3:], " "))
		if err == nil {
			r.printf("synthesized ViewCL:\n%s", prog)
		}
	default:
		_, err = r.Session.VPlotFigure(fields[1])
	}
	if err != nil {
		r.printf("error: %v\n", err)
		return
	}
	out, _ := r.Session.VCtrl("layout")
	r.printf("%s", out)
}

// vtrace prints the span tree of an extraction: `vtrace` shows the most
// recent plot, `vtrace <pane>` a specific pane's. Requires the session to
// have been built with an observer.
func (r *Runner) vtrace(fields []string) {
	if r.Session.Obs == nil {
		r.printf("tracing is off: session has no observer\n")
		return
	}
	if len(fields) > 1 {
		var id int
		if _, err := fmt.Sscanf(fields[1], "%d", &id); err != nil {
			r.printf("usage: vtrace [pane]\n")
			return
		}
		tr, ok := r.Session.Trace(id)
		if !ok {
			r.printf("no trace for pane %d (only plots are traced)\n", id)
			return
		}
		r.printf("pane %d:\n%s", id, tr.FormatTree())
		return
	}
	id, tr, ok := r.Session.LastTrace()
	if !ok {
		r.printf("no extractions traced yet; vplot first\n")
		return
	}
	r.printf("pane %d:\n%s", id, tr.FormatTree())
}

func (r *Runner) vchat(rest string) {
	pane := 1
	if strings.HasPrefix(rest, "@") {
		if _, err := fmt.Sscanf(rest, "@%d", &pane); err == nil {
			if i := strings.Index(rest, " "); i > 0 {
				rest = strings.TrimSpace(rest[i:])
			}
		}
	}
	kind, out, err := r.Session.VChatAnswer(pane, rest)
	if err != nil {
		r.printf("error: %v\n", err)
		return
	}
	if kind == core.AnswerDiagnosis {
		r.printf("%s", out)
		return
	}
	r.printf("synthesized ViewQL:\n%s", out)
}
