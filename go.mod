module visualinux

go 1.23
