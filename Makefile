# Tier-1 verification and bench smoke for the Visualinux reproduction.
#
#   make ci      vet + build + race tests + bench smoke (what a PR must pass)
#   make test    fast test sweep (no race detector)
#   make bench   the full benchmark suite, 1 iteration each
#   make table4  regenerate the paper's Table 4 (+ cache before/after + JSON)

GO ?= go

.PHONY: ci test race vet build bench bench-smoke table4

ci: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run='^$$' -bench=BenchmarkTable2Extract -benchtime=1x .

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

table4:
	$(GO) run ./cmd/perfbench -json
