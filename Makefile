# Tier-1 verification and bench smoke for the Visualinux reproduction.
#
#   make ci            vet + build + race tests + bench smoke + bench-regress
#   make test          fast test sweep (no race detector)
#   make bench         the full benchmark suite, 1 iteration each
#   make table4        regenerate the paper's Table 4 (+ cache before/after + JSON)
#   make bench-regress re-run perfbench and fail if any figure's cached
#                      kgdb_ms regressed >25% (+50ms slack) vs BENCH_1.json,
#                      the slow-link (PacketSize=512 RSP) cost regressed
#                      vs BENCH_3.json, the steady-state incremental
#                      cost regressed vs BENCH_4.json (same 25%/50ms gate,
#                      plus a 0.9 box reuse-ratio floor), the compiled
#                      engine's same-run CPU speedup over the tree-walking
#                      interpreter fell below 3x / the steady round started
#                      allocating (BENCH_6_CUR.json, absolute floors), or
#                      the stream fan-out plane regressed: worst fast-client
#                      p95 push latency above 250ms, a fast client losing
#                      frames, or slow consumers failing to coalesce
#                      (BENCH_7_CUR.json, absolute ceilings/floors), or the
#                      multi-tenant session fabric regressed: worst
#                      session's request p95 above 250ms, a hot session
#                      inflating a victim's round more than 8x, or fleet
#                      admission re-parsing/re-compiling the ViewCL stdlib
#                      at all (BENCH_8_CUR.json, absolute ceilings + exact
#                      zeros), or the CoW fleet memory regressed: dedup
#                      ratio below 3x, fork admission slower than build
#                      admission, worst session request p95 above 250ms,
#                      or the template-fork/zero-copy fast paths idle
#                      (BENCH_9_CUR.json, exact floor + same-run
#                      comparison), or the fleet-query fan-out regressed:
#                      16-target mixed-fleet p95 above 100ms, a target
#                      unhealthy or the core dumps missing, or the merge
#                      empty/untagged (BENCH_10_CUR.json, absolute ceiling
#                      + exact shape)
#   make table6        regenerate the compiled-vs-interpreted CPU report
#                      (BENCH_6.json)
#   make table7        regenerate the stream fan-out push-latency report
#                      (BENCH_7.json)
#   make table8        regenerate the multi-tenant session-fabric report
#                      (BENCH_8.json)
#   make table9        regenerate the fleet-memory CoW report (BENCH_9.json)
#   make table10       regenerate the fleet-query fan-out report (BENCH_10.json)
#   make fuzz-smoke    short ViewQL fuzz pass (panic hunt over Engine.Apply;
#                      the committed corpus seeds always run)
#   make race-link     race-detector pass over the read pipeline packages
#                      (gdbrsp client/server, target cache, memory journal,
#                      interpreter memo, server, core workers, stream broker,
#                      coredump loader, viewql engine)

GO ?= go

.PHONY: ci test race vet build bench bench-smoke bench-regress race-link fuzz-smoke table4 table4-rsp table4-steady table6 table7 table8 table9 table10

ci: vet build race race-link fuzz-smoke bench-smoke bench-regress

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

race-link:
	$(GO) test -race ./internal/gdbrsp ./internal/target ./internal/mem ./internal/viewcl ./internal/server ./internal/obs ./internal/core ./internal/vchat ./internal/stream ./internal/coredump ./internal/viewql

fuzz-smoke:
	$(GO) test -fuzz=FuzzApply -fuzztime=5s -run='^FuzzApply$$' ./internal/viewql

bench-smoke:
	$(GO) test -run='^$$' -bench=BenchmarkTable2Extract -benchtime=1x .

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

bench-regress:
	$(GO) run ./cmd/perfbench -json BENCH_2.json -rspjson BENCH_3_CUR.json -steadyjson BENCH_4_CUR.json -cpujson BENCH_6_CUR.json -streamjson BENCH_7_CUR.json -tenantjson BENCH_8_CUR.json -memjson BENCH_9_CUR.json -fleetjson BENCH_10_CUR.json > /dev/null
	$(GO) run ./cmd/benchguard BENCH_1.json BENCH_2.json
	$(GO) run ./cmd/benchguard BENCH_3.json BENCH_3_CUR.json
	$(GO) run ./cmd/benchguard -reusefloor 0.9 BENCH_4.json BENCH_4_CUR.json
	$(GO) run ./cmd/benchguard -speedupfloor 3 -allocceil 16 BENCH_6_CUR.json
	$(GO) run ./cmd/benchguard -pushp95ceil 250 BENCH_7_CUR.json
	$(GO) run ./cmd/benchguard -tenantp95ceil 250 -isolationceil 8 BENCH_8_CUR.json
	$(GO) run ./cmd/benchguard -dedupfloor 3 -forkadmitceil BENCH_9_CUR.json
	$(GO) run ./cmd/benchguard -fleetp95ceil 100 -fleettargets 16 BENCH_10_CUR.json

table4:
	$(GO) run ./cmd/perfbench -json BENCH_1.json

table4-rsp:
	$(GO) run ./cmd/perfbench -rspjson BENCH_3.json

table4-steady:
	$(GO) run ./cmd/perfbench -steadyjson BENCH_4.json

table6:
	$(GO) run ./cmd/perfbench -cpujson BENCH_6.json

table7:
	$(GO) run ./cmd/perfbench -streamjson BENCH_7.json

table8:
	$(GO) run ./cmd/perfbench -tenantjson BENCH_8.json

table9:
	$(GO) run ./cmd/perfbench -memjson BENCH_9.json

table10:
	$(GO) run ./cmd/perfbench -fleetjson BENCH_10.json
