# Tier-1 verification and bench smoke for the Visualinux reproduction.
#
#   make ci            vet + build + race tests + bench smoke + bench-regress
#   make test          fast test sweep (no race detector)
#   make bench         the full benchmark suite, 1 iteration each
#   make table4        regenerate the paper's Table 4 (+ cache before/after + JSON)
#   make bench-regress re-run perfbench and fail if any figure's cached
#                      kgdb_ms regressed >25% (+50ms slack) vs BENCH_1.json

GO ?= go

.PHONY: ci test race vet build bench bench-smoke bench-regress table4

ci: vet build race bench-smoke bench-regress

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run='^$$' -bench=BenchmarkTable2Extract -benchtime=1x .

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

bench-regress:
	$(GO) run ./cmd/perfbench -json BENCH_2.json > /dev/null
	$(GO) run ./cmd/benchguard BENCH_1.json BENCH_2.json

table4:
	$(GO) run ./cmd/perfbench -json BENCH_1.json
