# Tier-1 verification and bench smoke for the Visualinux reproduction.
#
#   make ci            vet + build + race tests + bench smoke + bench-regress
#   make test          fast test sweep (no race detector)
#   make bench         the full benchmark suite, 1 iteration each
#   make table4        regenerate the paper's Table 4 (+ cache before/after + JSON)
#   make bench-regress re-run perfbench and fail if any figure's cached
#                      kgdb_ms regressed >25% (+50ms slack) vs BENCH_1.json,
#                      or the slow-link (PacketSize=512 RSP) cost regressed
#                      vs BENCH_3.json
#   make race-link     race-detector pass over the read pipeline packages
#                      (gdbrsp client/server, target cache, core workers)

GO ?= go

.PHONY: ci test race vet build bench bench-smoke bench-regress race-link table4 table4-rsp

ci: vet build race race-link bench-smoke bench-regress

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

race-link:
	$(GO) test -race ./internal/gdbrsp ./internal/target ./internal/core

bench-smoke:
	$(GO) test -run='^$$' -bench=BenchmarkTable2Extract -benchtime=1x .

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

bench-regress:
	$(GO) run ./cmd/perfbench -json BENCH_2.json -rspjson BENCH_3_CUR.json > /dev/null
	$(GO) run ./cmd/benchguard BENCH_1.json BENCH_2.json
	$(GO) run ./cmd/benchguard BENCH_3.json BENCH_3_CUR.json

table4:
	$(GO) run ./cmd/perfbench -json BENCH_1.json

table4-rsp:
	$(GO) run ./cmd/perfbench -rspjson BENCH_3.json
